//! Scoped worker pool with deterministic chunked work-splitting.
//!
//! Work is divided into contiguous index ranges assigned statically to
//! workers — no work-stealing, no shared queues — so a batch's results are
//! byte-identical for every thread count, and each worker touches a single
//! contiguous slice of the output (no false sharing on hot loops).

use super::Engine;

/// The contiguous `[lo, hi)` index ranges splitting `n` items over at most
/// `workers` workers: the first `n % workers` chunks take one extra item.
/// Returns fewer chunks than workers when `n < workers`; empty for `n = 0`.
///
/// # Examples
///
/// ```
/// use monotone_engine::chunk_bounds;
///
/// assert_eq!(chunk_bounds(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
/// assert_eq!(chunk_bounds(2, 8), vec![(0, 1), (1, 2)]);
/// assert_eq!(chunk_bounds(0, 4), vec![]);
/// ```
pub fn chunk_bounds(n: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.min(n);
    if workers == 0 {
        return Vec::new();
    }
    let base = n / workers;
    let extra = n % workers;
    let mut bounds = Vec::with_capacity(workers);
    let mut lo = 0;
    for i in 0..workers {
        let hi = lo + base + usize::from(i < extra);
        bounds.push((lo, hi));
        lo = hi;
    }
    bounds
}

impl Engine {
    /// Applies `f(index, item)` to every item across the worker pool,
    /// returning results in input order. Single-threaded engines (and
    /// single-item inputs) run inline without spawning.
    ///
    /// This is the engine's generic parallel driver; [`Engine::run`] is
    /// built on it, and experiment binaries use it directly for workloads
    /// that are not instance pairs (e.g. sketch-based similarity sweeps).
    pub fn map_chunked<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let bounds = chunk_bounds(items.len(), self.threads());
        if bounds.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
        results.resize_with(items.len(), || None);
        std::thread::scope(|s| {
            let mut rest: &mut [Option<R>] = &mut results;
            for &(lo, hi) in &bounds {
                let (chunk, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                let f = &f;
                s.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(f(lo + j, &items[lo + j]));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every slot is filled by exactly one worker"))
            .collect()
    }
}

impl Engine {
    /// Dynamic-scheduling variant of [`Engine::map_chunked`]: workers
    /// claim item indices from a shared atomic counter instead of owning
    /// a static contiguous range, so skewed item costs no longer
    /// serialize behind the slowest static chunk (the scenario runner's
    /// work-stealing fallback when shards outnumber workers).
    ///
    /// Results still land in index-preassigned slots, so the output is
    /// identical to [`Engine::map_chunked`] for every worker count —
    /// scheduling order never leaks into the results.
    pub fn map_stolen<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let workers = self.threads().min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let f = &f;
                    s.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            got.push((i, f(i, &items[i])));
                        }
                        got
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
        results.resize_with(items.len(), || None);
        for bucket in buckets {
            for (i, r) in bucket {
                results[i] = Some(r);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every index is claimed by exactly one worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_exactly() {
        for n in 0..50 {
            for workers in 1..10 {
                let bounds = chunk_bounds(n, workers);
                let mut expect_lo = 0;
                for &(lo, hi) in &bounds {
                    assert_eq!(lo, expect_lo);
                    assert!(hi > lo, "empty chunk");
                    expect_lo = hi;
                }
                assert_eq!(expect_lo, n, "n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn map_chunked_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 7] {
            let engine = Engine::with_threads(threads);
            let out = engine.map_chunked(&items, |i, &x| x * 2 + i as u64);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, items[i] * 2 + i as u64);
            }
        }
    }

    #[test]
    fn map_chunked_empty_and_tiny() {
        let engine = Engine::with_threads(4);
        let empty: Vec<u32> = Vec::new();
        assert!(engine.map_chunked(&empty, |_, &x| x).is_empty());
        assert_eq!(engine.map_chunked(&[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn map_stolen_matches_map_chunked() {
        let items: Vec<u64> = (0..317).collect();
        let reference = Engine::with_threads(1).map_chunked(&items, |i, &x| x * 3 + i as u64);
        for threads in [1, 2, 3, 8] {
            let engine = Engine::with_threads(threads);
            assert_eq!(
                engine.map_stolen(&items, |i, &x| x * 3 + i as u64),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn map_stolen_skewed_costs_stay_ordered() {
        // Quadratic cost in the index: late items dominate. The dynamic
        // pool must still return results in input order.
        let items: Vec<usize> = (0..64).collect();
        let engine = Engine::with_threads(4);
        let out = engine.map_stolen(&items, |_, &n| {
            let mut acc = 0u64;
            for j in 0..(n * n * 100) as u64 {
                acc = acc.wrapping_add(j ^ (acc >> 3));
            }
            (n, acc)
        });
        for (i, (n, _)) in out.iter().enumerate() {
            assert_eq!(i, *n);
        }
    }

    #[test]
    fn map_stolen_empty_and_tiny() {
        let engine = Engine::with_threads(4);
        let empty: Vec<u32> = Vec::new();
        assert!(engine.map_stolen(&empty, |_, &x| x).is_empty());
        assert_eq!(engine.map_stolen(&[5u32], |_, &x| x + 1), vec![6]);
    }
}
