//! # monotone-engine
//!
//! Batched, thread-parallel estimation over coordinated samples of many
//! instance pairs — the workspace's designated hot path.
//!
//! The paper's prime application is estimating functions (`RGp+`, distinct
//! counts, Jaccard, Lp) over coordinated samples of *many* instances; the
//! follow-up customization work (arXiv:1212.0243, arXiv:1406.6490) is
//! motivated precisely by running customized estimators over massive sketch
//! collections. The naive pattern — one [`Mep`] construction, one
//! quadrature-backed estimate, one instance pair at a time — re-derives the
//! same per-MEP state for every outcome. The [`Engine`] amortizes that
//! setup once per batch:
//!
//! * **closed-form dispatch** — `RGp+` under common-scale PPS uses
//!   [`RgPlusLStar`] (`p ∈ {1, 2}`) and [`RgPlusUStar`] automatically; only
//!   genuinely generic problems pay for quadrature;
//! * **bulk sampling** — each item's shared seed is hashed exactly once per
//!   pair (not once per instance per estimator) by merging the two sorted
//!   instances in a single pass ([`merged_weights`]);
//! * **deterministic parallelism** — jobs are split into contiguous chunks
//!   over a [`std::thread::scope`] worker pool; results land in
//!   preassigned slots, so the output is identical for every thread count.
//!
//! ```
//! use monotone_coord::instance::Instance;
//! use monotone_engine::{Engine, EngineQuery, EstimatorKind, PairJob};
//!
//! let a = Instance::from_pairs((0..100u64).map(|k| (k, 0.2 + (k % 7) as f64 / 10.0)));
//! let b = Instance::from_pairs((0..100u64).map(|k| (k, 0.2 + (k % 5) as f64 / 10.0)));
//! let jobs: Vec<PairJob> = (0..16).map(|salt| PairJob::new(&a, &b, salt)).collect();
//! let query = EngineQuery::rg_plus(1.0, 1.0)
//!     .with_estimators(&[EstimatorKind::LStar, EstimatorKind::HorvitzThompson]);
//! let batch = Engine::new().run(&jobs, &query).unwrap();
//! assert_eq!(batch.pairs.len(), 16);
//! let lstar = &batch.summaries[0];
//! assert!(lstar.nrmse < 1.0);
//! ```
//!
//! [`Mep`]: monotone_core::problem::Mep
//! [`RgPlusLStar`]: monotone_core::estimate::RgPlusLStar
//! [`RgPlusUStar`]: monotone_core::estimate::RgPlusUStar
//! [`merged_weights`]: monotone_coord::instance::merged_weights

mod pool;
mod prepared;
pub mod runner;
pub mod scenario;
pub mod workload;

pub use pool::chunk_bounds;
pub use runner::{CsvArtifact, Runner, ScenarioRun, ScenarioTiming};
pub use scenario::{CsvSpec, FinishOut, Registry, Scenario, UnitOut};

use monotone_coord::instance::Instance;
use monotone_core::quad::QuadConfig;
use monotone_core::Result;

use prepared::PreparedQuery;

/// Which estimator to run for each item of a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// The paper's L\* (Section 4): closed form for `RGp+` with
    /// `p ∈ {1, 2}`, breakpoint-aware quadrature otherwise.
    LStar,
    /// The upper-extreme U\* (Section 6): closed form for `RGp+`.
    UStar,
    /// Horvitz-Thompson, the inverse-probability baseline.
    HorvitzThompson,
    /// The dyadic J estimator, the O(1)-competitive baseline.
    DyadicJ,
}

impl EstimatorKind {
    /// Display name for tables and summaries.
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorKind::LStar => "L*",
            EstimatorKind::UStar => "U*",
            EstimatorKind::HorvitzThompson => "HT",
            EstimatorKind::DyadicJ => "J",
        }
    }
}

/// What to estimate over each pair: the `RGp+` sum aggregate
/// `Σ_k max(0, v1_k − v2_k)^p` under coordinated PPS with a common scale,
/// for a set of estimators.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineQuery {
    p: f64,
    scale: f64,
    estimators: Vec<EstimatorKind>,
    quad: QuadConfig,
}

impl EngineQuery {
    /// An `RGp+` query with exponent `p` and PPS scale `τ*`, estimated with
    /// L\* only (customize via [`with_estimators`](EngineQuery::with_estimators)).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not finite positive (the scale is validated at run
    /// time, where it can be reported as a typed error).
    pub fn rg_plus(p: f64, scale: f64) -> EngineQuery {
        assert!(p.is_finite() && p > 0.0, "RGp+ exponent must be positive");
        EngineQuery {
            p,
            scale,
            estimators: vec![EstimatorKind::LStar],
            quad: QuadConfig::fast(),
        }
    }

    /// Replaces the estimator set (order is preserved in the results).
    pub fn with_estimators(mut self, kinds: &[EstimatorKind]) -> EngineQuery {
        self.estimators = kinds.to_vec();
        self
    }

    /// Replaces the quadrature configuration used by generic fallbacks.
    pub fn with_quad(mut self, quad: QuadConfig) -> EngineQuery {
        self.quad = quad;
        self
    }

    /// The `RGp+` exponent.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The common PPS scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The estimators run per pair, in result order.
    pub fn estimators(&self) -> &[EstimatorKind] {
        &self.estimators
    }

    /// The quadrature configuration for generic fallbacks.
    pub fn quad(&self) -> &QuadConfig {
        &self.quad
    }
}

/// One unit of work: an instance pair, the randomization salt that seeds
/// its coordinated sample, and an optional query domain.
#[derive(Debug, Clone, Copy)]
pub struct PairJob<'a> {
    /// First instance (entry 1 of every item tuple).
    pub a: &'a Instance,
    /// Second instance (entry 2).
    pub b: &'a Instance,
    /// Salt of the shared seed hash — one coordinated sampling run.
    pub salt: u64,
    /// Restrict the sum aggregate to these keys (`None` = union of active
    /// items).
    pub domain: Option<&'a [u64]>,
}

impl<'a> PairJob<'a> {
    /// A job over the full union domain.
    pub fn new(a: &'a Instance, b: &'a Instance, salt: u64) -> PairJob<'a> {
        PairJob {
            a,
            b,
            salt,
            domain: None,
        }
    }

    /// Restricts the query to a key domain.
    pub fn with_domain(mut self, domain: &'a [u64]) -> PairJob<'a> {
        self.domain = Some(domain);
        self
    }
}

/// Per-pair output: one estimate per requested estimator, plus the exact
/// value (cheap to carry along — the engine already visits every item).
#[derive(Debug, Clone, PartialEq)]
pub struct PairResult {
    /// Estimates, parallel to [`EngineQuery::estimators`].
    pub estimates: Vec<f64>,
    /// The exact sum aggregate over the job's domain.
    pub truth: f64,
    /// Number of items with sampled evidence (estimation work done).
    pub sampled_items: usize,
}

/// Accuracy summary of one estimator over a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorSummary {
    /// Which estimator.
    pub kind: EstimatorKind,
    /// Mean estimate across pairs.
    pub mean_estimate: f64,
    /// Mean exact value across pairs.
    pub mean_truth: f64,
    /// `sqrt(mean((est − truth)²)) / mean(truth)` (raw RMSE when the mean
    /// truth is zero) — the paper-style accuracy measure.
    pub nrmse: f64,
    /// Largest absolute per-pair error.
    pub max_abs_error: f64,
}

/// A completed batch: per-pair results in job order plus per-estimator
/// summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// One entry per job, in input order regardless of thread count.
    pub pairs: Vec<PairResult>,
    /// One entry per estimator, in query order.
    pub summaries: Vec<EstimatorSummary>,
    /// Total items with sampled evidence across the batch.
    pub total_sampled_items: usize,
}

/// The batched estimation engine: cached per-MEP state plus a scoped
/// worker pool with deterministic chunked work-splitting.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// An engine sized to the machine (`available_parallelism`).
    pub fn new() -> Engine {
        Engine {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// An engine with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Engine {
        assert!(threads > 0, "engine needs at least one worker");
        Engine { threads }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a batch: every job through every estimator of the query, with
    /// per-MEP state (closed-form dispatch, quadrature configuration,
    /// outcome buffers) prepared once and shared read-only by the workers.
    ///
    /// # Errors
    ///
    /// Returns an error if the query's scale is invalid or outcome assembly
    /// fails (corrupted instance data).
    pub fn run(&self, jobs: &[PairJob<'_>], query: &EngineQuery) -> Result<BatchResult> {
        let prepared = PreparedQuery::new(query)?;
        let results = self.map_chunked(jobs, |_, job| prepared.run_job(job));
        let pairs = results.into_iter().collect::<Result<Vec<PairResult>>>()?;
        Ok(summarize(query, pairs))
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

fn summarize(query: &EngineQuery, pairs: Vec<PairResult>) -> BatchResult {
    let n = pairs.len().max(1) as f64;
    let mean_truth = pairs.iter().map(|p| p.truth).sum::<f64>() / n;
    let summaries = query
        .estimators()
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let mean_estimate = pairs.iter().map(|p| p.estimates[i]).sum::<f64>() / n;
            let mse = pairs
                .iter()
                .map(|p| {
                    let e = p.estimates[i] - p.truth;
                    e * e
                })
                .sum::<f64>()
                / n;
            let max_abs_error = pairs
                .iter()
                .map(|p| (p.estimates[i] - p.truth).abs())
                .fold(0.0, f64::max);
            let rmse = mse.sqrt();
            EstimatorSummary {
                kind,
                mean_estimate,
                mean_truth,
                nrmse: if mean_truth.abs() > 0.0 {
                    rmse / mean_truth.abs()
                } else {
                    rmse
                },
                max_abs_error,
            }
        })
        .collect();
    let total_sampled_items = pairs.iter().map(|p| p.sampled_items).sum();
    BatchResult {
        pairs,
        summaries,
        total_sampled_items,
    }
}
