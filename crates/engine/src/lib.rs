//! # monotone-engine
//!
//! Batched, thread-parallel estimation over coordinated samples of many
//! instance groups — the workspace's designated hot path.
//!
//! The paper's prime application is estimating functions (`RGp+`, distinct
//! counts, Jaccard, Lp) over coordinated samples of *many* instances; the
//! follow-up customization work (arXiv:1212.0243, arXiv:1406.6490) is
//! motivated precisely by running customized estimators over massive sketch
//! collections. Coordination itself is arity-free — one shared hash seed
//! per item drives the sampling of that item in *every* instance — so the
//! engine's unit of work is an **instance group** of any arity:
//! [`GroupJob`] bundles N instances with a randomization (or fixed probe
//! seed) and an optional domain, and [`PairJob`] is the thin arity-2
//! convenience the pair workloads keep using. The naive pattern — one
//! [`Mep`] construction, one quadrature-backed estimate, one group at a
//! time — re-derives the same per-MEP state for every outcome. The
//! [`Engine`] amortizes that setup once per batch through a pluggable
//! **kernel** layer:
//!
//! * **kernels** — an [`EngineQuery`] builder selects a function family
//!   ([`RGp+`](monotone_core::func::RangePowPlus), distinct-count OR at
//!   any arity, min/max, linear forms) over per-instance PPS scales and
//!   compiles it into an [`EstimationKernel`]: prepare-once state,
//!   per-item `evaluate` over the item's weights in every instance of the
//!   group, with reusable scratch. Custom kernels plug straight into
//!   [`Engine::run_kernel`]/[`Engine::run_group_kernel`] — the scenario
//!   registry runs variance sweeps, probe-seed estimate curves,
//!   sample-overlap counting, and sketch-pair similarity through the same
//!   batch loop;
//! * **closed-form registration** — function families register their
//!   closed forms per scheme ([`KernelFunc`]); `RGp+` under a common
//!   scale dispatches to [`RgPlusLStar`] (`p ∈ {1, 2}`) and
//!   [`RgPlusUStar`] automatically, the distinct-count OR registers its
//!   inverse-probability form for **any arity**, and only genuinely
//!   generic problems pay for quadrature;
//! * **item sources** — every job streams its items through the same
//!   stream protocol: a cursor yielding keys in ascending order with one
//!   weight per instance of the group, abstracted as [`ItemSource`].
//!   [`WeightMerger`] is the exact full-map source for arity-N groups
//!   (pairs and arity-2 groups take [`merged_weights`], the
//!   tuple-yielding specialization that keeps both weights in
//!   registers — the CI-gated hot path), [`DomainSource`] walks an
//!   explicit key domain, and [`SketchUnion`] streams the retained union
//!   of N coordinated bottom-k sketches with per-instance conditioned
//!   inclusion scales —
//!   compile a query with those scales
//!   ([`EngineQuery::with_instance_scales`]) and the kernels apply the
//!   paper's inverse-probability correction for items the sketches
//!   dropped, through the very same hot loop. Ad-hoc sources run as
//!   [`SourceJob`]s via [`Engine::run_sources`] /
//!   [`Engine::run_source_kernel`];
//! * **chunked hot loop** — whatever the source, its item stream is
//!   staged into row-major `[item][instance]` chunks of 64 items, and
//!   each chunk is processed by exactly two batch calls: one
//!   [`SeedHasher::seed_many`] (the SplitMix64 stages run as wide
//!   lanes — AVX-512 where the CPU has it, interleaved scalar
//!   elsewhere, bit-identical either way; fixed-seed probe jobs skip
//!   the hash entirely), then one
//!   [`evaluate_many`](EstimationKernel::evaluate_many). Kernel dispatch
//!   is per **chunk**, not per item: when every estimator slot resolved
//!   to a registered closed form, the threshold tests and estimates run
//!   as monomorphic structure-of-arrays sweeps over the staged chunk,
//!   and the per-item virtual `evaluate` survives only as the fallback
//!   for kernels that need materialized outcomes;
//! * **deterministic parallelism** — jobs are split into contiguous chunks
//!   over a [`std::thread::scope`] worker pool; results land in
//!   preassigned slots, so the output is identical for every thread count.
//!
//! ```
//! use monotone_coord::instance::Instance;
//! use monotone_engine::{Engine, EngineQuery, EstimatorKind, GroupJob, PairJob};
//!
//! let a = Instance::from_pairs((0..100u64).map(|k| (k, 0.2 + (k % 7) as f64 / 10.0)));
//! let b = Instance::from_pairs((0..100u64).map(|k| (k, 0.2 + (k % 5) as f64 / 10.0)));
//! let jobs: Vec<PairJob> = (0..16).map(|salt| PairJob::new(&a, &b, salt)).collect();
//! let query = EngineQuery::rg_plus(1.0, 1.0)
//!     .with_estimators(&[EstimatorKind::LStar, EstimatorKind::HorvitzThompson]);
//! let batch = Engine::new().run(&jobs, &query).unwrap();
//! assert_eq!(batch.pairs.len(), 16);
//! let lstar = &batch.summaries[0];
//! assert_eq!(lstar.label, "L*");
//! assert!(lstar.nrmse < 1.0);
//!
//! // Arity-N group jobs reach past pairs: a 3-instance distinct count
//! // (how many items are active somewhere?) through the OR indicator's
//! // N-way inverse-probability closed form.
//! let c = Instance::from_pairs((50..160u64).map(|k| (k, 0.3 + (k % 3) as f64 / 10.0)));
//! let group = [a, b, c];
//! let jobs: Vec<GroupJob> = (0..16).map(|salt| GroupJob::new(&group, salt)).collect();
//! let distinct = EngineQuery::distinct_k(3, 2.0);
//! let batch = Engine::new().run_groups(&jobs, &distinct).unwrap();
//! assert_eq!(batch.pairs[0].truth, 160.0); // keys 0..160 active somewhere
//! assert!((batch.summaries[0].mean_estimate - 160.0).abs() < 16.0);
//! ```
//!
//! [`Mep`]: monotone_core::problem::Mep
//! [`RgPlusLStar`]: monotone_core::estimate::RgPlusLStar
//! [`RgPlusUStar`]: monotone_core::estimate::RgPlusUStar
//! [`SeedHasher::seed_many`]: monotone_coord::seed::SeedHasher::seed_many
//! [`WeightMerger`]: monotone_coord::instance::WeightMerger

pub mod kernel;
mod pool;
pub mod runner;
pub mod scenario;
pub mod workload;

pub use kernel::{
    ClosedForm, ClosedForms, ClosedPairForm, EstimationKernel, FuncKernel, KernelFunc,
    KernelScratch,
};
pub use pool::chunk_bounds;
pub use runner::{CsvArtifact, Runner, ScenarioRun, ScenarioTiming};
pub use scenario::{CsvSpec, FinishOut, Registry, Scenario, UnitOut};

pub use monotone_coord::source::{DomainSource, ItemSource, SketchUnion};

use monotone_coord::instance::{merged_weights, Instance, WeightMerger};
use monotone_coord::seed::SeedHasher;
use monotone_core::func::{DistinctOr, LinearAbsPow, RangePowPlus, TupleMax, TupleMin};
use monotone_core::quad::QuadConfig;
use monotone_core::Result;

/// Which estimator to run for each item of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// The paper's L\* (Section 4): closed form where the function family
    /// registered one, breakpoint-aware quadrature otherwise.
    LStar,
    /// The upper-extreme U\* (Section 6): closed form where registered,
    /// backward integration of Eq. (48) otherwise.
    UStar,
    /// Horvitz-Thompson, the inverse-probability baseline.
    HorvitzThompson,
    /// The dyadic J estimator, the O(1)-competitive baseline.
    DyadicJ,
}

impl EstimatorKind {
    /// Display name for tables and summaries.
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorKind::LStar => "L*",
            EstimatorKind::UStar => "U*",
            EstimatorKind::HorvitzThompson => "HT",
            EstimatorKind::DyadicJ => "J",
        }
    }
}

/// The function family a query estimates over each job — the sum
/// aggregate is `Σ_k f(v_k)` over the job's item domain, `v_k` the item's
/// weight tuple across the group's instances.
#[derive(Debug, Clone, PartialEq)]
enum FuncSpec {
    /// `max(0, v1 − v2)^p` (pairs).
    RgPlus { p: f64 },
    /// The OR indicator (distinct count) over `arity` instances.
    Distinct { arity: usize },
    /// `min(v1, v2)` (pairs).
    TupleMin,
    /// `max(v1, v2)` (pairs).
    TupleMax,
    /// `|a·v1 + b·v2 + offset|^p` (pairs).
    LinearAbs { a: f64, b: f64, offset: f64, p: f64 },
}

impl FuncSpec {
    fn arity(&self) -> usize {
        match self {
            FuncSpec::Distinct { arity } => *arity,
            _ => 2,
        }
    }
}

/// What to estimate over each job: a function-family sum aggregate under
/// coordinated PPS with per-instance scales, for a set of estimators.
///
/// A query is a *builder* for an [`EstimationKernel`]: constructors pick
/// the function family (and, for the arity-generic families, the group
/// arity), [`with_scales`](EngineQuery::with_scales) /
/// [`with_instance_scales`](EngineQuery::with_instance_scales) set
/// per-instance sampling scales,
/// [`with_estimators`](EngineQuery::with_estimators) the estimator set,
/// and [`kernel`](EngineQuery::kernel) compiles the prepared state
/// [`Engine::run`] and [`Engine::run_groups`] execute. Closed forms
/// registered by the family are used automatically;
/// [`without_closed_forms`](EngineQuery::without_closed_forms) forces the
/// generic paths (agreement checks, baseline measurements).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineQuery {
    func: FuncSpec,
    scales: Vec<f64>,
    estimators: Vec<EstimatorKind>,
    quad: QuadConfig,
    closed_forms: bool,
}

impl EngineQuery {
    fn with_func(func: FuncSpec, scale: f64) -> EngineQuery {
        let scales = vec![scale; func.arity()];
        EngineQuery {
            func,
            scales,
            estimators: vec![EstimatorKind::LStar],
            quad: QuadConfig::fast(),
            closed_forms: true,
        }
    }

    /// An `RGp+` query with exponent `p` and common PPS scale `τ*`,
    /// estimated with L\* only (customize via
    /// [`with_estimators`](EngineQuery::with_estimators)).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not finite positive (scales are validated at
    /// kernel-build time, where they can be reported as typed errors).
    pub fn rg_plus(p: f64, scale: f64) -> EngineQuery {
        assert!(p.is_finite() && p > 0.0, "RGp+ exponent must be positive");
        EngineQuery::with_func(FuncSpec::RgPlus { p }, scale)
    }

    /// A pair distinct-count (OR indicator) query: the sum aggregate
    /// counts items active in at least one of the two instances.
    pub fn distinct(scale: f64) -> EngineQuery {
        EngineQuery::distinct_k(2, scale)
    }

    /// A `k`-way distinct-count query over arity-`k` group jobs: the sum
    /// aggregate counts items active in at least one of the group's `k`
    /// instances. The OR family registers its inverse-probability L\*
    /// closed form at every arity.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0` (the underlying [`DistinctOr`]
    /// constructor's contract).
    pub fn distinct_k(arity: usize, scale: f64) -> EngineQuery {
        let _ = DistinctOr::new(arity); // validate eagerly
        EngineQuery::with_func(FuncSpec::Distinct { arity }, scale)
    }

    /// A `min(v1, v2)` query (e.g. the numerator of weighted Jaccard).
    pub fn tuple_min(scale: f64) -> EngineQuery {
        EngineQuery::with_func(FuncSpec::TupleMin, scale)
    }

    /// A `max(v1, v2)` query (e.g. the denominator of weighted Jaccard).
    pub fn tuple_max(scale: f64) -> EngineQuery {
        EngineQuery::with_func(FuncSpec::TupleMax, scale)
    }

    /// An `|a·v1 + b·v2 + offset|^p` query (Example 1's `G`-style forms).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not finite positive or a coefficient is
    /// non-finite (the underlying [`LinearAbsPow`] constructor's
    /// contract).
    pub fn linear_abs(a: f64, b: f64, offset: f64, p: f64, scale: f64) -> EngineQuery {
        let _ = LinearAbsPow::new(vec![a, b], offset, p); // validate eagerly
        EngineQuery::with_func(FuncSpec::LinearAbs { a, b, offset, p }, scale)
    }

    /// Sets the two per-instance PPS scales of a pair query (constructors
    /// start from a common scale). Closed forms that require a common
    /// scale deregister themselves automatically. For arity-N queries use
    /// [`with_instance_scales`](EngineQuery::with_instance_scales).
    pub fn with_scales(self, scale_a: f64, scale_b: f64) -> EngineQuery {
        self.with_instance_scales(&[scale_a, scale_b])
    }

    /// Replaces the full per-instance scale vector (one scale per
    /// instance of the job group). The length must match the query's
    /// arity — a mismatch surfaces as a typed error at kernel-build time.
    pub fn with_instance_scales(mut self, scales: &[f64]) -> EngineQuery {
        self.scales = scales.to_vec();
        self
    }

    /// Replaces the estimator set (order is preserved in the results).
    /// Duplicate kinds are dropped after their first occurrence — a
    /// repeated kind would evaluate identically and double-count in
    /// [`BatchResult::summaries`].
    pub fn with_estimators(mut self, kinds: &[EstimatorKind]) -> EngineQuery {
        let mut deduped: Vec<EstimatorKind> = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            if !deduped.contains(&kind) {
                deduped.push(kind);
            }
        }
        self.estimators = deduped;
        self
    }

    /// Replaces the quadrature configuration used by generic fallbacks.
    pub fn with_quad(mut self, quad: QuadConfig) -> EngineQuery {
        self.quad = quad;
        self
    }

    /// Disables registered closed forms: every estimator runs its generic
    /// path. Used by agreement checks and by the benchmark that prices
    /// what closed-form registration saves.
    pub fn without_closed_forms(mut self) -> EngineQuery {
        self.closed_forms = false;
        self
    }

    /// The per-instance PPS scales (one per instance of the job group).
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// The group arity this query's function family expects.
    pub fn arity(&self) -> usize {
        self.func.arity()
    }

    /// The estimators run per job, in result order.
    pub fn estimators(&self) -> &[EstimatorKind] {
        &self.estimators
    }

    /// The quadrature configuration for generic fallbacks.
    pub fn quad(&self) -> &QuadConfig {
        &self.quad
    }

    /// Compiles the query into its prepared kernel: function family plus
    /// scheme resolved, closed forms registered (unless disabled), one
    /// dispatch decision per estimator slot.
    ///
    /// # Errors
    ///
    /// Returns an error if a scale is invalid (zero, negative, infinite,
    /// or NaN) or the scale vector's length differs from the query arity.
    pub fn kernel(&self) -> Result<Box<dyn EstimationKernel>> {
        fn build<F: kernel::KernelFunc + Sync + 'static>(
            f: F,
            q: &EngineQuery,
        ) -> Result<Box<dyn EstimationKernel>> {
            let closed = if q.closed_forms {
                f.closed_forms(&q.scales)
            } else {
                ClosedForms::none()
            };
            Ok(Box::new(FuncKernel::new(
                f,
                &q.scales,
                &q.estimators,
                q.quad,
                closed,
            )?))
        }
        match &self.func {
            FuncSpec::RgPlus { p } => build(RangePowPlus::new(*p), self),
            FuncSpec::Distinct { arity } => build(DistinctOr::new(*arity), self),
            FuncSpec::TupleMin => build(TupleMin::new(2), self),
            FuncSpec::TupleMax => build(TupleMax::new(2), self),
            FuncSpec::LinearAbs { a, b, offset, p } => {
                build(LinearAbsPow::new(vec![*a, *b], *offset, *p), self)
            }
        }
    }
}

/// One unit of work at any arity: an instance group, the randomization
/// that seeds its coordinated sample, and an optional query domain.
///
/// The group borrows a contiguous instance slice — a
/// [`Dataset`](monotone_coord::instance::Dataset)'s
/// [`instances()`](monotone_coord::instance::Dataset::instances), or any
/// locally built `[Instance]` array. [`PairJob`] is the arity-2
/// convenience wrapper over the same execution path.
#[derive(Debug, Clone, Copy)]
pub struct GroupJob<'a> {
    /// The group's instances (entry `i` of every item tuple).
    pub instances: &'a [Instance],
    /// Salt of the shared seed hash — one coordinated sampling run.
    pub salt: u64,
    /// Fixed shared seed overriding the hash: every item of the group is
    /// sampled at exactly this seed (`None` = hash per item key). The
    /// probe-curve pattern: sweep estimate curves at chosen seeds.
    pub seed: Option<f64>,
    /// Restrict the sum aggregate to these keys (`None` = union of active
    /// items).
    pub domain: Option<&'a [u64]>,
}

impl<'a> GroupJob<'a> {
    /// A job over the full union domain with hashed per-item seeds.
    pub fn new(instances: &'a [Instance], salt: u64) -> GroupJob<'a> {
        GroupJob {
            instances,
            salt,
            seed: None,
            domain: None,
        }
    }

    /// Number of instances in the group.
    pub fn arity(&self) -> usize {
        self.instances.len()
    }

    /// Fixes the shared seed of every item (instead of hashing keys).
    pub fn with_seed(mut self, seed: f64) -> GroupJob<'a> {
        self.seed = Some(seed);
        self
    }

    /// Restricts the query to a key domain.
    pub fn with_domain(mut self, domain: &'a [u64]) -> GroupJob<'a> {
        self.domain = Some(domain);
        self
    }
}

/// One unit of work at arity 2: an instance pair, the randomization that
/// seeds its coordinated sample, and an optional query domain.
///
/// This is the thin pair alias of [`GroupJob`]: both run the same kernel
/// batch loop, and an arity-2 group over `[a, b]` reproduces a pair job
/// bit for bit (regression-tested). Pair workloads keep this shape so
/// instances can be borrowed from anywhere (pools, registries) without
/// materializing contiguous groups.
#[derive(Debug, Clone, Copy)]
pub struct PairJob<'a> {
    /// First instance (entry 1 of every item tuple).
    pub a: &'a Instance,
    /// Second instance (entry 2).
    pub b: &'a Instance,
    /// Salt of the shared seed hash — one coordinated sampling run.
    pub salt: u64,
    /// Fixed shared seed overriding the hash: every item of the pair is
    /// sampled at exactly this seed (`None` = hash per item key). The
    /// probe-curve pattern: sweep estimate curves at chosen seeds.
    pub seed: Option<f64>,
    /// Restrict the sum aggregate to these keys (`None` = union of active
    /// items).
    pub domain: Option<&'a [u64]>,
}

impl<'a> PairJob<'a> {
    /// A job over the full union domain with hashed per-item seeds.
    pub fn new(a: &'a Instance, b: &'a Instance, salt: u64) -> PairJob<'a> {
        PairJob {
            a,
            b,
            salt,
            seed: None,
            domain: None,
        }
    }

    /// Fixes the shared seed of every item (instead of hashing keys).
    pub fn with_seed(mut self, seed: f64) -> PairJob<'a> {
        self.seed = Some(seed);
        self
    }

    /// Restricts the query to a key domain.
    pub fn with_domain(mut self, domain: &'a [u64]) -> PairJob<'a> {
        self.domain = Some(domain);
        self
    }
}

/// One unit of work over an explicit [`ItemSource`]: an un-advanced
/// stream cursor plus the randomization its coordinated sample was (or
/// is to be) drawn under.
///
/// This is how sketch-backed streams ([`SketchUnion`]) and other ad-hoc
/// sources enter the batch engine: workers clone the cursor, so one
/// prepared source fans out to any number of jobs. The salt **must** be
/// the salt the source's sample was built with — a sketch stores items
/// selected by one concrete randomization, and evaluating it under
/// another would decouple the seeds from the retention decisions.
#[derive(Debug, Clone)]
pub struct SourceJob<S> {
    /// The un-advanced item stream (cloned per execution).
    pub source: S,
    /// Salt of the shared seed hash the stream's sampling used.
    pub salt: u64,
    /// Fixed shared seed overriding the hash (`None` = hash per key).
    pub seed: Option<f64>,
}

impl<S: ItemSource> SourceJob<S> {
    /// A job over `source` under the seed-hash salt `salt`.
    pub fn new(source: S, salt: u64) -> SourceJob<S> {
        SourceJob {
            source,
            salt,
            seed: None,
        }
    }

    /// Number of instances in the source's group.
    pub fn arity(&self) -> usize {
        self.source.arity()
    }

    /// Fixes the shared seed of every item (instead of hashing keys).
    pub fn with_seed(mut self, seed: f64) -> SourceJob<S> {
        self.seed = Some(seed);
        self
    }
}

/// Per-job output: one estimate per kernel column, plus the exact value
/// (cheap to carry along — the engine already visits every item).
#[derive(Debug, Clone, PartialEq)]
pub struct PairResult {
    /// Estimates, parallel to the kernel's
    /// [`labels`](EstimationKernel::labels) (for query-built kernels:
    /// [`EngineQuery::estimators`]).
    pub estimates: Vec<f64>,
    /// The exact sum aggregate over the job's domain.
    pub truth: f64,
    /// Number of items with sampled evidence (estimation work done).
    pub sampled_items: usize,
}

/// Accuracy summary of one estimator column over a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorSummary {
    /// Kernel column label (for query-built kernels:
    /// [`EstimatorKind::name`]).
    pub label: String,
    /// Mean estimate across jobs.
    pub mean_estimate: f64,
    /// Mean exact value across jobs.
    pub mean_truth: f64,
    /// `sqrt(mean((est − truth)²)) / mean(truth)` (raw RMSE when the mean
    /// truth is zero) — the paper-style accuracy measure.
    pub nrmse: f64,
    /// Largest absolute per-job error.
    pub max_abs_error: f64,
}

/// A completed batch: per-job results in job order plus per-column
/// summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// One entry per job, in input order regardless of thread count.
    pub pairs: Vec<PairResult>,
    /// One entry per kernel column, in label order — **empty for an
    /// empty batch**: a mean over zero jobs is undefined, so no
    /// per-column statistics are fabricated.
    pub summaries: Vec<EstimatorSummary>,
    /// Total items with sampled evidence across the batch.
    pub total_sampled_items: usize,
}

/// The batched estimation engine: a prepared kernel plus a scoped worker
/// pool with deterministic chunked work-splitting.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// An engine sized to the machine (`available_parallelism`).
    pub fn new() -> Engine {
        Engine {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// An engine with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Engine {
        assert!(threads > 0, "engine needs at least one worker");
        Engine { threads }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a pair batch: every job through every estimator of the
    /// query, with the query compiled into its kernel once
    /// ([`EngineQuery::kernel`]) and shared read-only by the workers.
    ///
    /// # Errors
    ///
    /// Returns an error if a query scale is invalid or outcome assembly
    /// fails (corrupted instance data).
    pub fn run(&self, jobs: &[PairJob<'_>], query: &EngineQuery) -> Result<BatchResult> {
        let kernel = query.kernel()?;
        self.run_kernel(jobs, kernel.as_ref())
    }

    /// Runs an arity-N group batch: [`Engine::run`] over [`GroupJob`]s.
    ///
    /// # Errors
    ///
    /// Returns an error if a query scale is invalid, the query arity
    /// differs from a job's group arity, or outcome assembly fails.
    pub fn run_groups(&self, jobs: &[GroupJob<'_>], query: &EngineQuery) -> Result<BatchResult> {
        let kernel = query.kernel()?;
        self.run_group_kernel(jobs, kernel.as_ref())
    }

    /// Runs a pair batch through an explicit [`EstimationKernel`] — the
    /// entry point for custom pair kernels (oracle sweeps, probe curves,
    /// payload kernels). [`Engine::run`] is this with the query's own
    /// kernel.
    ///
    /// # Errors
    ///
    /// Propagates the first error any job's evaluation reports.
    pub fn run_kernel(
        &self,
        jobs: &[PairJob<'_>],
        kernel: &dyn EstimationKernel,
    ) -> Result<BatchResult> {
        let labels = kernel.labels();
        let width = labels.len();
        let results = self.map_chunked(jobs, |_, job| run_pair_job(kernel, width, job));
        let pairs = results.into_iter().collect::<Result<Vec<PairResult>>>()?;
        Ok(summarize(labels, pairs))
    }

    /// Runs an arity-N group batch through an explicit
    /// [`EstimationKernel`]: the kernel's `evaluate` receives each item's
    /// weights in every instance of the job's group.
    ///
    /// # Errors
    ///
    /// Propagates the first error any job's evaluation reports.
    pub fn run_group_kernel(
        &self,
        jobs: &[GroupJob<'_>],
        kernel: &dyn EstimationKernel,
    ) -> Result<BatchResult> {
        let labels = kernel.labels();
        let width = labels.len();
        let results = self.map_chunked(jobs, |_, job| run_group_job(kernel, width, job));
        let pairs = results.into_iter().collect::<Result<Vec<PairResult>>>()?;
        Ok(summarize(labels, pairs))
    }

    /// Runs a batch of explicit [`ItemSource`] jobs — the entry point for
    /// sketch-backed streams ([`SketchUnion`]) and any other source that
    /// is not a borrowed instance group. Each worker clones its job's
    /// un-advanced cursor, so the batch is deterministic at every thread
    /// count like the pair and group paths.
    ///
    /// The reported `truth` is the exact aggregate **over the stream**:
    /// for exact sources that is the true value; for sketch-backed
    /// sources it is the aggregate of the retained union (the estimates,
    /// not the stream truth, are the store's answer — they correct for
    /// what the sketches dropped).
    ///
    /// # Errors
    ///
    /// Returns an error if a query scale is invalid, the query arity
    /// differs from a source's arity, or a streamed weight is invalid.
    pub fn run_sources<S>(&self, jobs: &[SourceJob<S>], query: &EngineQuery) -> Result<BatchResult>
    where
        S: ItemSource + Clone + Sync,
    {
        let kernel = query.kernel()?;
        self.run_source_kernel(jobs, kernel.as_ref())
    }

    /// Runs [`ItemSource`] jobs through an explicit [`EstimationKernel`]
    /// ([`Engine::run_sources`] is this with the query's own kernel).
    ///
    /// # Errors
    ///
    /// Propagates the first error any job's evaluation reports.
    pub fn run_source_kernel<S>(
        &self,
        jobs: &[SourceJob<S>],
        kernel: &dyn EstimationKernel,
    ) -> Result<BatchResult>
    where
        S: ItemSource + Clone + Sync,
    {
        let labels = kernel.labels();
        let width = labels.len();
        let results = self.map_chunked(jobs, |_, job| run_source_job(kernel, width, job));
        let pairs = results.into_iter().collect::<Result<Vec<PairResult>>>()?;
        Ok(summarize(labels, pairs))
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// Chunk size of the bulk seed-hashing loop: big enough to amortize the
/// per-chunk dispatch, small enough to stay in registers/L1.
const SEED_CHUNK: usize = 64;

/// Item staging buffers for one job: keys and per-instance weights stream
/// in, seeds are hashed in bulk ([`SeedHasher::seed_many`]) — or filled
/// once on the fixed-seed path, which never touches the hash — and the
/// kernel evaluates the chunk. Keys and seeds are stack arrays; the
/// weight staging is one arity-sized flat buffer allocated once per job.
struct ChunkBufs {
    keys: [u64; SEED_CHUNK],
    seeds: [f64; SEED_CHUNK],
    /// Row-major `[item][instance]` staging, `arity * SEED_CHUNK` wide.
    weights: Vec<f64>,
    arity: usize,
    len: usize,
}

impl ChunkBufs {
    fn new(arity: usize) -> ChunkBufs {
        ChunkBufs {
            keys: [0; SEED_CHUNK],
            seeds: [0.0; SEED_CHUNK],
            weights: vec![0.0; arity * SEED_CHUNK],
            arity,
            len: 0,
        }
    }

    fn push(&mut self, key: u64, ws: &[f64]) {
        debug_assert_eq!(
            ws.len(),
            self.arity,
            "ChunkBufs::push arity mismatch: item {key} carries {} weights, \
             chunk is staged for arity {}",
            ws.len(),
            self.arity
        );
        self.keys[self.len] = key;
        self.weights[self.len * self.arity..(self.len + 1) * self.arity].copy_from_slice(ws);
        self.len += 1;
    }

    fn push_pair(&mut self, key: u64, wa: f64, wb: f64) {
        self.keys[self.len] = key;
        self.weights[self.len * 2] = wa;
        self.weights[self.len * 2 + 1] = wb;
        self.len += 1;
    }

    fn is_full(&self) -> bool {
        self.len == SEED_CHUNK
    }
}

/// Per-job execution state shared by the pair and group paths: staging
/// buffers, scratch, accumulators, and the chunk flush.
struct JobRun<'k> {
    kernel: &'k dyn EstimationKernel,
    seeder: SeedHasher,
    fixed_seed: bool,
    bufs: ChunkBufs,
    scratch: KernelScratch,
    estimates: Vec<f64>,
    truth: f64,
    sampled_items: usize,
}

impl<'k> JobRun<'k> {
    fn new(
        kernel: &'k dyn EstimationKernel,
        width: usize,
        arity: usize,
        salt: u64,
        seed: Option<f64>,
    ) -> JobRun<'k> {
        let mut bufs = ChunkBufs::new(arity);
        if let Some(u) = seed {
            // Fixed-seed jobs (probe curves) never hash: the seed buffer
            // is filled once here and reused by every chunk.
            bufs.seeds.fill(u);
        }
        JobRun {
            kernel,
            seeder: SeedHasher::new(salt),
            fixed_seed: seed.is_some(),
            bufs,
            scratch: KernelScratch::new(),
            estimates: vec![0.0; width],
            truth: 0.0,
            sampled_items: 0,
        }
    }

    /// Flushes the staged chunk: one bulk seed hash
    /// ([`SeedHasher::seed_many`] — skipped on the fixed-seed path), then
    /// ONE [`evaluate_many`](EstimationKernel::evaluate_many) call, so
    /// virtual kernel dispatch happens once per chunk rather than once
    /// per item.
    fn flush(&mut self) -> Result<()> {
        let n = self.bufs.len;
        if n == 0 {
            return Ok(());
        }
        if !self.fixed_seed {
            self.seeder
                .seed_many(&self.bufs.keys[..n], &mut self.bufs.seeds[..n]);
        }
        self.sampled_items += self.kernel.evaluate_many(
            &self.bufs.keys[..n],
            &self.bufs.weights[..n * self.bufs.arity],
            self.bufs.arity,
            &self.bufs.seeds[..n],
            &mut self.scratch,
            &mut self.estimates,
        )?;
        self.bufs.len = 0;
        Ok(())
    }

    fn finish(mut self) -> Result<PairResult> {
        self.flush()?;
        Ok(PairResult {
            estimates: self.estimates,
            truth: self.truth,
            sampled_items: self.sampled_items,
        })
    }
}

/// Rejects jobs whose group arity differs from the kernel's requirement
/// (streaming a truncated weight tuple would silently misestimate).
fn check_arity(kernel: &dyn EstimationKernel, got: usize) -> Result<()> {
    match kernel.arity() {
        Some(expected) if expected != got => {
            Err(monotone_core::Error::ArityMismatch { expected, got })
        }
        _ => Ok(()),
    }
}

/// Rejects negative or non-finite item weights as typed errors.
/// Validated instance constructors never store such weights, but raw
/// ingest paths ([`Instance::set_raw`]) defer validation to the engine —
/// which must report the item, never skip it or stream it into kernels
/// (the explicit-domain path used to do the latter whenever a partner
/// entry was positive, a silent misestimate).
///
/// [`Instance::set_raw`]: monotone_coord::instance::Instance::set_raw
#[inline]
fn check_weight(key: u64, w: f64) -> Result<()> {
    if w.is_finite() && w >= 0.0 {
        Ok(())
    } else {
        Err(monotone_core::Error::InvalidWeight { key, weight: w })
    }
}

/// The one streaming loop every job shape runs: drain an [`ItemSource`]
/// into the job's staging buffers, validating weights, accumulating the
/// stream truth, and flushing full chunks through the two batch calls.
/// Items with no active weight anywhere (all entries `<= 0`, as an
/// explicit domain or a raw-ingested map can stream) contribute nothing
/// to any registered family and are skipped after validation — invalid
/// weights still surface as typed errors, never silently.
///
/// Generic (monomorphized per concrete source) so the exact full-map
/// merge stays as statically dispatched as the hand-rolled loops it
/// replaced.
fn stream_into_run<S: ItemSource + ?Sized>(
    run: &mut JobRun<'_>,
    source: &mut S,
    ws: &mut [f64],
) -> Result<()> {
    while let Some(key) = source.next_into(ws) {
        for &w in ws.iter() {
            check_weight(key, w)?;
        }
        if ws.iter().all(|&w| w <= 0.0) {
            continue;
        }
        run.truth += run.kernel.truth(ws);
        run.bufs.push(key, ws);
        if run.bufs.is_full() {
            run.flush()?;
        }
    }
    Ok(())
}

/// The arity-2 specialization of [`stream_into_run`]: the identical
/// protocol (validate, skip inactive, accumulate truth, stage, flush),
/// but over a tuple-yielding merged stream ([`merged_weights`]) instead
/// of a buffer-filling [`ItemSource`]. Yielding `(key, wa, wb)` by value
/// keeps both weights in registers through the whole sequence — routing
/// pairs through a weight *buffer* costs ~20% of the batched hot loop's
/// throughput, which the CI perf gate would refuse.
fn stream_pairs_into_run(
    run: &mut JobRun<'_>,
    items: impl Iterator<Item = (u64, f64, f64)>,
) -> Result<()> {
    for (key, wa, wb) in items {
        check_weight(key, wa)?;
        check_weight(key, wb)?;
        if wa <= 0.0 && wb <= 0.0 {
            continue;
        }
        run.truth += run.kernel.truth(&[wa, wb]);
        run.bufs.push_pair(key, wa, wb);
        if run.bufs.is_full() {
            run.flush()?;
        }
    }
    Ok(())
}

/// Executes one pair job against a kernel: the merged pair stream
/// ([`merged_weights`]) through [`stream_pairs_into_run`], or a
/// [`DomainSource`] through the generic loop when the job restricts the
/// domain.
fn run_pair_job(
    kernel: &dyn EstimationKernel,
    width: usize,
    job: &PairJob<'_>,
) -> Result<PairResult> {
    check_arity(kernel, 2)?;
    let mut run = JobRun::new(kernel, width, 2, job.salt, job.seed);
    let mut ws = [0.0; 2];
    match job.domain {
        None => stream_pairs_into_run(&mut run, merged_weights(job.a, job.b))?,
        Some(domain) => stream_into_run(
            &mut run,
            &mut DomainSource::new(domain, vec![job.a, job.b]),
            &mut ws,
        )?,
    }
    run.finish()
}

/// Executes one arity-N group job against a kernel: the N-way merged
/// item union streamed through the same protocol as every other source:
/// [`merged_weights`] + [`stream_pairs_into_run`] at arity 2 (the
/// register-resident hot path), [`WeightMerger`] at arity N, and
/// [`DomainSource`] when the job restricts the domain.
fn run_group_job(
    kernel: &dyn EstimationKernel,
    width: usize,
    job: &GroupJob<'_>,
) -> Result<PairResult> {
    let arity = job.instances.len();
    check_arity(kernel, arity)?;
    let mut run = JobRun::new(kernel, width, arity, job.salt, job.seed);
    let mut ws = vec![0.0; arity];
    match job.domain {
        // Arity-2 groups take the register-resident pair stream:
        // identical item union, hot-path speed.
        None => match job.instances {
            [a, b] => stream_pairs_into_run(&mut run, merged_weights(a, b))?,
            _ => stream_into_run(&mut run, &mut WeightMerger::new(job.instances), &mut ws)?,
        },
        Some(domain) => stream_into_run(
            &mut run,
            &mut DomainSource::new(domain, job.instances.iter().collect()),
            &mut ws,
        )?,
    }
    run.finish()
}

/// Executes one explicit-source job: clone the un-advanced cursor and
/// stream it.
fn run_source_job<S: ItemSource + Clone>(
    kernel: &dyn EstimationKernel,
    width: usize,
    job: &SourceJob<S>,
) -> Result<PairResult> {
    let mut source = job.source.clone();
    let arity = source.arity();
    check_arity(kernel, arity)?;
    let mut run = JobRun::new(kernel, width, arity, job.salt, job.seed);
    let mut ws = vec![0.0; arity];
    stream_into_run(&mut run, &mut source, &mut ws)?;
    run.finish()
}

fn summarize(labels: Vec<String>, pairs: Vec<PairResult>) -> BatchResult {
    // A mean over zero jobs is undefined: an empty batch gets empty
    // summaries instead of fabricated per-column statistics.
    if pairs.is_empty() {
        return BatchResult {
            pairs,
            summaries: Vec::new(),
            total_sampled_items: 0,
        };
    }
    let n = pairs.len() as f64;
    let mean_truth = pairs.iter().map(|p| p.truth).sum::<f64>() / n;
    let summaries = labels
        .into_iter()
        .enumerate()
        .map(|(i, label)| {
            let mean_estimate = pairs.iter().map(|p| p.estimates[i]).sum::<f64>() / n;
            let mse = pairs
                .iter()
                .map(|p| {
                    let e = p.estimates[i] - p.truth;
                    e * e
                })
                .sum::<f64>()
                / n;
            let max_abs_error = pairs
                .iter()
                .map(|p| (p.estimates[i] - p.truth).abs())
                .fold(0.0, f64::max);
            let rmse = mse.sqrt();
            EstimatorSummary {
                label,
                mean_estimate,
                mean_truth,
                nrmse: if mean_truth.abs() > 0.0 {
                    rmse / mean_truth.abs()
                } else {
                    rmse
                },
                max_abs_error,
            }
        })
        .collect();
    let total_sampled_items = pairs.iter().map(|p| p.sampled_items).sum();
    BatchResult {
        pairs,
        summaries,
        total_sampled_items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A wrong-length weight slice used to panic deep inside
    /// `copy_from_slice` with a length message that named neither the
    /// item nor the staged arity; the debug assertion must name both.
    #[test]
    #[cfg(debug_assertions)]
    fn chunk_bufs_push_names_the_arity_mismatch() {
        let panic = std::panic::catch_unwind(|| {
            let mut bufs = ChunkBufs::new(3);
            bufs.push(42, &[1.0, 2.0]);
        })
        .expect_err("wrong-length weight slice must panic in debug builds");
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert!(
            msg.contains("ChunkBufs::push arity mismatch")
                && msg.contains("item 42")
                && msg.contains("2 weights")
                && msg.contains("arity 3"),
            "unhelpful panic message: {msg}"
        );
    }

    #[test]
    fn chunk_bufs_push_accepts_matching_arity() {
        let mut bufs = ChunkBufs::new(3);
        bufs.push(7, &[1.0, 2.0, 3.0]);
        assert_eq!(bufs.len, 1);
        assert_eq!(bufs.keys[0], 7);
        assert_eq!(&bufs.weights[..3], &[1.0, 2.0, 3.0]);
    }
}
