//! # monotone-engine
//!
//! Batched, thread-parallel estimation over coordinated samples of many
//! instance pairs — the workspace's designated hot path.
//!
//! The paper's prime application is estimating functions (`RGp+`, distinct
//! counts, Jaccard, Lp) over coordinated samples of *many* instances; the
//! follow-up customization work (arXiv:1212.0243, arXiv:1406.6490) is
//! motivated precisely by running customized estimators over massive sketch
//! collections. The naive pattern — one [`Mep`] construction, one
//! quadrature-backed estimate, one instance pair at a time — re-derives the
//! same per-MEP state for every outcome. The [`Engine`] amortizes that
//! setup once per batch through a pluggable **kernel** layer:
//!
//! * **kernels** — an [`EngineQuery`] builder selects a function family
//!   ([`RGp+`](monotone_core::func::RangePowPlus), distinct-count OR,
//!   min/max, linear forms) over per-instance PPS scales and compiles it
//!   into an [`EstimationKernel`]: prepare-once state, per-item `evaluate`
//!   with reusable scratch. Custom kernels plug straight into
//!   [`Engine::run_kernel`] — the scenario registry runs variance sweeps,
//!   probe-seed estimate curves, and sketch-pair similarity through the
//!   same batch loop;
//! * **closed-form registration** — function families register their
//!   closed forms per scheme ([`KernelFunc`]); `RGp+` under a common scale
//!   dispatches to [`RgPlusLStar`] (`p ∈ {1, 2}`) and [`RgPlusUStar`]
//!   automatically, so only genuinely generic problems pay for quadrature;
//! * **bulk sampling** — each item's shared seed is hashed exactly once per
//!   pair (not once per instance per estimator), in chunks via
//!   [`SeedHasher::seed_many`] over the merged key stream
//!   ([`merged_weights`]);
//! * **deterministic parallelism** — jobs are split into contiguous chunks
//!   over a [`std::thread::scope`] worker pool; results land in
//!   preassigned slots, so the output is identical for every thread count.
//!
//! ```
//! use monotone_coord::instance::Instance;
//! use monotone_engine::{Engine, EngineQuery, EstimatorKind, PairJob};
//!
//! let a = Instance::from_pairs((0..100u64).map(|k| (k, 0.2 + (k % 7) as f64 / 10.0)));
//! let b = Instance::from_pairs((0..100u64).map(|k| (k, 0.2 + (k % 5) as f64 / 10.0)));
//! let jobs: Vec<PairJob> = (0..16).map(|salt| PairJob::new(&a, &b, salt)).collect();
//! let query = EngineQuery::rg_plus(1.0, 1.0)
//!     .with_estimators(&[EstimatorKind::LStar, EstimatorKind::HorvitzThompson]);
//! let batch = Engine::new().run(&jobs, &query).unwrap();
//! assert_eq!(batch.pairs.len(), 16);
//! let lstar = &batch.summaries[0];
//! assert_eq!(lstar.label, "L*");
//! assert!(lstar.nrmse < 1.0);
//!
//! // The builder reaches past RGp+: distinct counts under per-instance
//! // scales route through the kernel the OR indicator registers.
//! let distinct = EngineQuery::distinct(1.0).with_scales(1.0, 2.0);
//! let batch = Engine::new().run(&jobs, &distinct).unwrap();
//! assert!(batch.summaries[0].mean_truth > 0.0);
//! ```
//!
//! [`Mep`]: monotone_core::problem::Mep
//! [`RgPlusLStar`]: monotone_core::estimate::RgPlusLStar
//! [`RgPlusUStar`]: monotone_core::estimate::RgPlusUStar
//! [`SeedHasher::seed_many`]: monotone_coord::seed::SeedHasher::seed_many
//! [`merged_weights`]: monotone_coord::instance::merged_weights

pub mod kernel;
mod pool;
pub mod runner;
pub mod scenario;
pub mod workload;

pub use kernel::{
    ClosedForms, ClosedPairForm, EstimationKernel, FuncKernel, KernelFunc, KernelScratch,
};
pub use pool::chunk_bounds;
pub use runner::{CsvArtifact, Runner, ScenarioRun, ScenarioTiming};
pub use scenario::{CsvSpec, FinishOut, Registry, Scenario, UnitOut};

use monotone_coord::instance::{merged_weights, Instance};
use monotone_coord::seed::SeedHasher;
use monotone_core::func::{DistinctOr, LinearAbsPow, RangePowPlus, TupleMax, TupleMin};
use monotone_core::quad::QuadConfig;
use monotone_core::Result;

/// Which estimator to run for each item of a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// The paper's L\* (Section 4): closed form where the function family
    /// registered one, breakpoint-aware quadrature otherwise.
    LStar,
    /// The upper-extreme U\* (Section 6): closed form where registered,
    /// backward integration of Eq. (48) otherwise.
    UStar,
    /// Horvitz-Thompson, the inverse-probability baseline.
    HorvitzThompson,
    /// The dyadic J estimator, the O(1)-competitive baseline.
    DyadicJ,
}

impl EstimatorKind {
    /// Display name for tables and summaries.
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorKind::LStar => "L*",
            EstimatorKind::UStar => "U*",
            EstimatorKind::HorvitzThompson => "HT",
            EstimatorKind::DyadicJ => "J",
        }
    }
}

/// The function family a query estimates over each pair — the sum
/// aggregate is `Σ_k f(v1_k, v2_k)` over the job's item domain.
#[derive(Debug, Clone, PartialEq)]
enum FuncSpec {
    /// `max(0, v1 − v2)^p`.
    RgPlus { p: f64 },
    /// The OR indicator (distinct count).
    Distinct,
    /// `min(v1, v2)`.
    TupleMin,
    /// `max(v1, v2)`.
    TupleMax,
    /// `|a·v1 + b·v2 + offset|^p`.
    LinearAbs { a: f64, b: f64, offset: f64, p: f64 },
}

/// What to estimate over each pair: a function-family sum aggregate under
/// coordinated PPS with per-instance scales, for a set of estimators.
///
/// A query is a *builder* for an [`EstimationKernel`]: constructors pick
/// the function family, [`with_scales`](EngineQuery::with_scales) sets
/// per-instance sampling scales,
/// [`with_estimators`](EngineQuery::with_estimators) the estimator set,
/// and [`kernel`](EngineQuery::kernel) compiles the prepared state
/// [`Engine::run`] executes. Closed forms registered by the family are
/// used automatically;
/// [`without_closed_forms`](EngineQuery::without_closed_forms) forces the
/// generic paths (agreement checks, baseline measurements).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineQuery {
    func: FuncSpec,
    scales: [f64; 2],
    estimators: Vec<EstimatorKind>,
    quad: QuadConfig,
    closed_forms: bool,
}

impl EngineQuery {
    fn with_func(func: FuncSpec, scale: f64) -> EngineQuery {
        EngineQuery {
            func,
            scales: [scale, scale],
            estimators: vec![EstimatorKind::LStar],
            quad: QuadConfig::fast(),
            closed_forms: true,
        }
    }

    /// An `RGp+` query with exponent `p` and common PPS scale `τ*`,
    /// estimated with L\* only (customize via
    /// [`with_estimators`](EngineQuery::with_estimators)).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not finite positive (scales are validated at
    /// kernel-build time, where they can be reported as typed errors).
    pub fn rg_plus(p: f64, scale: f64) -> EngineQuery {
        assert!(p.is_finite() && p > 0.0, "RGp+ exponent must be positive");
        EngineQuery::with_func(FuncSpec::RgPlus { p }, scale)
    }

    /// A distinct-count (OR indicator) query: the sum aggregate counts
    /// items active in at least one instance.
    pub fn distinct(scale: f64) -> EngineQuery {
        EngineQuery::with_func(FuncSpec::Distinct, scale)
    }

    /// A `min(v1, v2)` query (e.g. the numerator of weighted Jaccard).
    pub fn tuple_min(scale: f64) -> EngineQuery {
        EngineQuery::with_func(FuncSpec::TupleMin, scale)
    }

    /// A `max(v1, v2)` query (e.g. the denominator of weighted Jaccard).
    pub fn tuple_max(scale: f64) -> EngineQuery {
        EngineQuery::with_func(FuncSpec::TupleMax, scale)
    }

    /// An `|a·v1 + b·v2 + offset|^p` query (Example 1's `G`-style forms).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not finite positive or a coefficient is
    /// non-finite (the underlying [`LinearAbsPow`] constructor's
    /// contract).
    pub fn linear_abs(a: f64, b: f64, offset: f64, p: f64, scale: f64) -> EngineQuery {
        let _ = LinearAbsPow::new(vec![a, b], offset, p); // validate eagerly
        EngineQuery::with_func(FuncSpec::LinearAbs { a, b, offset, p }, scale)
    }

    /// Sets per-instance PPS scales (constructors start from a common
    /// scale). Closed forms that require a common scale deregister
    /// themselves automatically.
    pub fn with_scales(mut self, scale_a: f64, scale_b: f64) -> EngineQuery {
        self.scales = [scale_a, scale_b];
        self
    }

    /// Replaces the estimator set (order is preserved in the results).
    /// Duplicate kinds are dropped after their first occurrence — a
    /// repeated kind would evaluate identically and double-count in
    /// [`BatchResult::summaries`].
    pub fn with_estimators(mut self, kinds: &[EstimatorKind]) -> EngineQuery {
        let mut deduped: Vec<EstimatorKind> = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            if !deduped.contains(&kind) {
                deduped.push(kind);
            }
        }
        self.estimators = deduped;
        self
    }

    /// Replaces the quadrature configuration used by generic fallbacks.
    pub fn with_quad(mut self, quad: QuadConfig) -> EngineQuery {
        self.quad = quad;
        self
    }

    /// Disables registered closed forms: every estimator runs its generic
    /// path. Used by agreement checks and by the benchmark that prices
    /// what closed-form registration saves.
    pub fn without_closed_forms(mut self) -> EngineQuery {
        self.closed_forms = false;
        self
    }

    /// The per-instance PPS scales.
    pub fn scales(&self) -> [f64; 2] {
        self.scales
    }

    /// The estimators run per pair, in result order.
    pub fn estimators(&self) -> &[EstimatorKind] {
        &self.estimators
    }

    /// The quadrature configuration for generic fallbacks.
    pub fn quad(&self) -> &QuadConfig {
        &self.quad
    }

    /// Compiles the query into its prepared kernel: function family plus
    /// scheme resolved, closed forms registered (unless disabled), one
    /// dispatch decision per estimator slot.
    ///
    /// # Errors
    ///
    /// Returns an error if a scale is invalid (zero, negative, infinite,
    /// or NaN).
    pub fn kernel(&self) -> Result<Box<dyn EstimationKernel>> {
        fn build<F: kernel::KernelFunc + Sync + 'static>(
            f: F,
            q: &EngineQuery,
        ) -> Result<Box<dyn EstimationKernel>> {
            let closed = if q.closed_forms {
                f.closed_forms(q.scales)
            } else {
                ClosedForms::none()
            };
            Ok(Box::new(FuncKernel::new(
                f,
                q.scales,
                &q.estimators,
                q.quad,
                closed,
            )?))
        }
        match &self.func {
            FuncSpec::RgPlus { p } => build(RangePowPlus::new(*p), self),
            FuncSpec::Distinct => build(DistinctOr::new(2), self),
            FuncSpec::TupleMin => build(TupleMin::new(2), self),
            FuncSpec::TupleMax => build(TupleMax::new(2), self),
            FuncSpec::LinearAbs { a, b, offset, p } => {
                build(LinearAbsPow::new(vec![*a, *b], *offset, *p), self)
            }
        }
    }
}

/// One unit of work: an instance pair, the randomization that seeds its
/// coordinated sample, and an optional query domain.
#[derive(Debug, Clone, Copy)]
pub struct PairJob<'a> {
    /// First instance (entry 1 of every item tuple).
    pub a: &'a Instance,
    /// Second instance (entry 2).
    pub b: &'a Instance,
    /// Salt of the shared seed hash — one coordinated sampling run.
    pub salt: u64,
    /// Fixed shared seed overriding the hash: every item of the pair is
    /// sampled at exactly this seed (`None` = hash per item key). The
    /// probe-curve pattern: sweep estimate curves at chosen seeds.
    pub seed: Option<f64>,
    /// Restrict the sum aggregate to these keys (`None` = union of active
    /// items).
    pub domain: Option<&'a [u64]>,
}

impl<'a> PairJob<'a> {
    /// A job over the full union domain with hashed per-item seeds.
    pub fn new(a: &'a Instance, b: &'a Instance, salt: u64) -> PairJob<'a> {
        PairJob {
            a,
            b,
            salt,
            seed: None,
            domain: None,
        }
    }

    /// Fixes the shared seed of every item (instead of hashing keys).
    pub fn with_seed(mut self, seed: f64) -> PairJob<'a> {
        self.seed = Some(seed);
        self
    }

    /// Restricts the query to a key domain.
    pub fn with_domain(mut self, domain: &'a [u64]) -> PairJob<'a> {
        self.domain = Some(domain);
        self
    }
}

/// Per-pair output: one estimate per kernel column, plus the exact value
/// (cheap to carry along — the engine already visits every item).
#[derive(Debug, Clone, PartialEq)]
pub struct PairResult {
    /// Estimates, parallel to the kernel's
    /// [`labels`](EstimationKernel::labels) (for query-built kernels:
    /// [`EngineQuery::estimators`]).
    pub estimates: Vec<f64>,
    /// The exact sum aggregate over the job's domain.
    pub truth: f64,
    /// Number of items with sampled evidence (estimation work done).
    pub sampled_items: usize,
}

/// Accuracy summary of one estimator column over a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorSummary {
    /// Kernel column label (for query-built kernels:
    /// [`EstimatorKind::name`]).
    pub label: String,
    /// Mean estimate across pairs.
    pub mean_estimate: f64,
    /// Mean exact value across pairs.
    pub mean_truth: f64,
    /// `sqrt(mean((est − truth)²)) / mean(truth)` (raw RMSE when the mean
    /// truth is zero) — the paper-style accuracy measure.
    pub nrmse: f64,
    /// Largest absolute per-pair error.
    pub max_abs_error: f64,
}

/// A completed batch: per-pair results in job order plus per-column
/// summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// One entry per job, in input order regardless of thread count.
    pub pairs: Vec<PairResult>,
    /// One entry per kernel column, in label order.
    pub summaries: Vec<EstimatorSummary>,
    /// Total items with sampled evidence across the batch.
    pub total_sampled_items: usize,
}

/// The batched estimation engine: a prepared kernel plus a scoped worker
/// pool with deterministic chunked work-splitting.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// An engine sized to the machine (`available_parallelism`).
    pub fn new() -> Engine {
        Engine {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// An engine with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Engine {
        assert!(threads > 0, "engine needs at least one worker");
        Engine { threads }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a batch: every job through every estimator of the query, with
    /// the query compiled into its kernel once
    /// ([`EngineQuery::kernel`]) and shared read-only by the workers.
    ///
    /// # Errors
    ///
    /// Returns an error if a query scale is invalid or outcome assembly
    /// fails (corrupted instance data).
    pub fn run(&self, jobs: &[PairJob<'_>], query: &EngineQuery) -> Result<BatchResult> {
        let kernel = query.kernel()?;
        self.run_kernel(jobs, kernel.as_ref())
    }

    /// Runs a batch through an explicit [`EstimationKernel`] — the entry
    /// point for custom kernels (oracle sweeps, probe curves, payload
    /// kernels). [`Engine::run`] is this with the query's own kernel.
    ///
    /// # Errors
    ///
    /// Propagates the first error any job's evaluation reports.
    pub fn run_kernel(
        &self,
        jobs: &[PairJob<'_>],
        kernel: &dyn EstimationKernel,
    ) -> Result<BatchResult> {
        let labels = kernel.labels();
        let width = labels.len();
        let results = self.map_chunked(jobs, |_, job| run_job(kernel, width, job));
        let pairs = results.into_iter().collect::<Result<Vec<PairResult>>>()?;
        Ok(summarize(labels, pairs))
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// Chunk size of the bulk seed-hashing loop: big enough to amortize the
/// per-chunk dispatch, small enough to stay in registers/L1.
const SEED_CHUNK: usize = 64;

/// Fixed-size item staging buffers for one job: keys and weights stream
/// in, seeds are hashed in bulk ([`SeedHasher::seed_many`]), the kernel
/// evaluates the chunk. Stack-allocated so the per-job allocation profile
/// is one estimates vector, exactly as before the kernel layer.
struct ChunkBufs {
    keys: [u64; SEED_CHUNK],
    was: [f64; SEED_CHUNK],
    wbs: [f64; SEED_CHUNK],
    seeds: [f64; SEED_CHUNK],
    len: usize,
}

impl ChunkBufs {
    fn new() -> ChunkBufs {
        ChunkBufs {
            keys: [0; SEED_CHUNK],
            was: [0.0; SEED_CHUNK],
            wbs: [0.0; SEED_CHUNK],
            seeds: [0.0; SEED_CHUNK],
            len: 0,
        }
    }

    fn push(&mut self, key: u64, wa: f64, wb: f64) {
        self.keys[self.len] = key;
        self.was[self.len] = wa;
        self.wbs[self.len] = wb;
        self.len += 1;
    }

    fn is_full(&self) -> bool {
        self.len == SEED_CHUNK
    }
}

/// Executes one job against a kernel: stream the item domain, hash seeds
/// chunk-wise, evaluate.
fn run_job(kernel: &dyn EstimationKernel, width: usize, job: &PairJob<'_>) -> Result<PairResult> {
    let seeder = SeedHasher::new(job.salt);
    let mut estimates = vec![0.0; width];
    let mut truth = 0.0;
    let mut sampled_items = 0usize;
    let mut scratch = KernelScratch::new();
    let mut bufs = ChunkBufs::new();

    let flush = |bufs: &mut ChunkBufs,
                 scratch: &mut KernelScratch,
                 estimates: &mut [f64],
                 sampled_items: &mut usize|
     -> Result<()> {
        let n = bufs.len;
        match job.seed {
            Some(u) => bufs.seeds[..n].fill(u),
            None => seeder.seed_many(&bufs.keys[..n], &mut bufs.seeds[..n]),
        }
        for i in 0..n {
            if kernel.evaluate(
                bufs.keys[i],
                bufs.was[i],
                bufs.wbs[i],
                bufs.seeds[i],
                scratch,
                estimates,
            )? {
                *sampled_items += 1;
            }
        }
        bufs.len = 0;
        Ok(())
    };

    match job.domain {
        None => {
            for (key, wa, wb) in merged_weights(job.a, job.b) {
                truth += kernel.truth(wa, wb);
                bufs.push(key, wa, wb);
                if bufs.is_full() {
                    flush(&mut bufs, &mut scratch, &mut estimates, &mut sampled_items)?;
                }
            }
        }
        Some(domain) => {
            for &key in domain {
                let wa = job.a.weight(key);
                let wb = job.b.weight(key);
                if wa <= 0.0 && wb <= 0.0 {
                    continue;
                }
                truth += kernel.truth(wa, wb);
                bufs.push(key, wa, wb);
                if bufs.is_full() {
                    flush(&mut bufs, &mut scratch, &mut estimates, &mut sampled_items)?;
                }
            }
        }
    }
    flush(&mut bufs, &mut scratch, &mut estimates, &mut sampled_items)?;

    Ok(PairResult {
        estimates,
        truth,
        sampled_items,
    })
}

fn summarize(labels: Vec<String>, pairs: Vec<PairResult>) -> BatchResult {
    let n = pairs.len().max(1) as f64;
    let mean_truth = pairs.iter().map(|p| p.truth).sum::<f64>() / n;
    let summaries = labels
        .into_iter()
        .enumerate()
        .map(|(i, label)| {
            let mean_estimate = pairs.iter().map(|p| p.estimates[i]).sum::<f64>() / n;
            let mse = pairs
                .iter()
                .map(|p| {
                    let e = p.estimates[i] - p.truth;
                    e * e
                })
                .sum::<f64>()
                / n;
            let max_abs_error = pairs
                .iter()
                .map(|p| (p.estimates[i] - p.truth).abs())
                .fold(0.0, f64::max);
            let rmse = mse.sqrt();
            EstimatorSummary {
                label,
                mean_estimate,
                mean_truth,
                nrmse: if mean_truth.abs() > 0.0 {
                    rmse / mean_truth.abs()
                } else {
                    rmse
                },
                max_abs_error,
            }
        })
        .collect();
    let total_sampled_items = pairs.iter().map(|p| p.sampled_items).sum();
    BatchResult {
        pairs,
        summaries,
        total_sampled_items,
    }
}
