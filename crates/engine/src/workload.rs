//! Canonical synthetic workloads shared by the engine benchmark and the
//! scenario smoke tests.
//!
//! `benches/engine.rs` and the scenario subsystem both need the same
//! reproducible `RG1+` pair workload (a pool of small instances, paired
//! with a stride so every batch mixes similar and dissimilar pairs);
//! keeping the construction here keeps the measured workload and the
//! tested workload identical by definition.
//!
//! # Examples
//!
//! ```
//! use monotone_engine::workload;
//!
//! let pool = workload::rg1_instance_pool(8, 12);
//! let jobs = workload::rg1_pair_jobs(&pool, 100);
//! assert_eq!(jobs.len(), 100);
//! // Deterministic: same pool, same pairing, same salts every call.
//! assert_eq!(jobs[3].salt, 3);
//! assert!(std::ptr::eq(jobs[0].a, &pool[0]));
//! ```

use monotone_coord::instance::Instance;

use super::{GroupJob, PairJob};

/// A pool of `instances` reproducible instances of `items_per_instance`
/// items each, with weights laid out on a fixed mod-97 lattice (the same
/// construction `benches/engine.rs` has always measured).
pub fn rg1_instance_pool(instances: u64, items_per_instance: u64) -> Vec<Instance> {
    (0..instances)
        .map(|v| {
            Instance::from_pairs(
                (0..items_per_instance)
                    .map(move |k| (k, 0.05 + 0.9 * (((k * 17 + v * 29 + 3) % 97) as f64 / 97.0))),
            )
        })
        .collect()
}

/// `pairs` jobs over the pool: job `i` pairs instance `i mod n` with
/// instance `(7i + 1) mod n` under salt `i`, cycling through every
/// instance combination and randomization.
///
/// # Panics
///
/// Panics if the pool is empty.
pub fn rg1_pair_jobs(pool: &[Instance], pairs: usize) -> Vec<PairJob<'_>> {
    assert!(!pool.is_empty(), "workload needs a non-empty instance pool");
    let n = pool.len();
    (0..pairs)
        .map(|i| PairJob::new(&pool[i % n], &pool[(i * 7 + 1) % n], i as u64))
        .collect()
}

/// An arity-`k` instance group with half-overlapping item windows:
/// instance `i` covers keys `[i·n/2, i·n/2 + n)` with weights on a fixed
/// mod-89 lattice, so consecutive instances share half their support and
/// the union grows linearly with `k` — the canonical workload of the
/// `multiway` k-way distinct-count scenario and the group-job tests.
pub fn distinct_group_pool(arity: usize, items_per_instance: u64) -> Vec<Instance> {
    assert!(arity >= 1, "group workload needs at least one instance");
    (0..arity as u64)
        .map(|i| {
            let lo = i * items_per_instance / 2;
            Instance::from_pairs(
                (lo..lo + items_per_instance)
                    .map(move |k| (k, 0.05 + 0.9 * (((k * 13 + i * 31 + 7) % 89) as f64 / 89.0))),
            )
        })
        .collect()
}

/// `randomizations` group jobs over one instance group, salted
/// `salt_base..salt_base + randomizations` — one coordinated sampling
/// run per job.
pub fn group_jobs(group: &[Instance], randomizations: u64, salt_base: u64) -> Vec<GroupJob<'_>> {
    (0..randomizations)
        .map(|r| GroupJob::new(group, salt_base + r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_deterministic_and_sized() {
        let a = rg1_instance_pool(32, 12);
        let b = rg1_instance_pool(32, 12);
        assert_eq!(a.len(), 32);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), 12);
            assert!(x.iter().zip(y.iter()).all(|(p, q)| p == q));
        }
        // Weights stay inside the PPS(1) sampling range.
        assert!(a
            .iter()
            .flat_map(|i| i.iter())
            .all(|(_, w)| w > 0.0 && w < 1.0));
    }

    #[test]
    fn group_pool_overlaps_and_jobs_are_salted() {
        let group = distinct_group_pool(4, 12);
        assert_eq!(group.len(), 4);
        for inst in &group {
            assert_eq!(inst.len(), 12);
            assert!(inst.iter().all(|(_, w)| w > 0.0 && w < 1.0));
        }
        // Consecutive windows share half their keys.
        let shared = group[0]
            .keys()
            .filter(|&k| group[1].weight(k) > 0.0)
            .count();
        assert_eq!(shared, 6);
        let jobs = group_jobs(&group, 5, 100);
        assert_eq!(jobs.len(), 5);
        assert_eq!(jobs[3].salt, 103);
        assert_eq!(jobs[0].arity(), 4);
        assert!(std::ptr::eq(jobs[0].instances.as_ptr(), group.as_ptr()));
    }

    #[test]
    fn jobs_cycle_the_pool() {
        let pool = rg1_instance_pool(4, 3);
        let jobs = rg1_pair_jobs(&pool, 10);
        assert_eq!(jobs.len(), 10);
        assert_eq!(jobs[9].salt, 9);
        assert!(std::ptr::eq(jobs[5].a, &pool[1]));
        assert!(std::ptr::eq(jobs[5].b, &pool[0]));
    }
}
