//! Canonical synthetic workloads shared by the engine benchmark and the
//! scenario smoke tests.
//!
//! `benches/engine.rs` and the scenario subsystem both need the same
//! reproducible `RG1+` pair workload (a pool of small instances, paired
//! with a stride so every batch mixes similar and dissimilar pairs);
//! keeping the construction here keeps the measured workload and the
//! tested workload identical by definition.
//!
//! # Examples
//!
//! ```
//! use monotone_engine::workload;
//!
//! let pool = workload::rg1_instance_pool(8, 12);
//! let jobs = workload::rg1_pair_jobs(&pool, 100);
//! assert_eq!(jobs.len(), 100);
//! // Deterministic: same pool, same pairing, same salts every call.
//! assert_eq!(jobs[3].salt, 3);
//! assert!(std::ptr::eq(jobs[0].a, &pool[0]));
//! ```

use monotone_coord::instance::Instance;

use super::{GroupJob, PairJob};

/// A pool of `instances` reproducible instances of `items_per_instance`
/// items each, with weights laid out on a fixed mod-97 lattice (the same
/// construction `benches/engine.rs` has always measured).
pub fn rg1_instance_pool(instances: u64, items_per_instance: u64) -> Vec<Instance> {
    (0..instances)
        .map(|v| {
            Instance::from_pairs(
                (0..items_per_instance)
                    .map(move |k| (k, 0.05 + 0.9 * (((k * 17 + v * 29 + 3) % 97) as f64 / 97.0))),
            )
        })
        .collect()
}

/// `pairs` jobs over the pool: job `i` pairs instance `i mod n` with
/// instance `(7i + 1) mod n` under salt `i`, cycling through every
/// instance combination and randomization.
///
/// # Panics
///
/// Panics if the pool is empty.
pub fn rg1_pair_jobs(pool: &[Instance], pairs: usize) -> Vec<PairJob<'_>> {
    assert!(!pool.is_empty(), "workload needs a non-empty instance pool");
    let n = pool.len();
    (0..pairs)
        .map(|i| PairJob::new(&pool[i % n], &pool[(i * 7 + 1) % n], i as u64))
        .collect()
}

/// An arity-`k` instance group with half-overlapping item windows:
/// instance `i` covers keys `[i·n/2, i·n/2 + n)` with weights on a fixed
/// mod-89 lattice, so consecutive instances share half their support and
/// the union grows linearly with `k` — the canonical workload of the
/// `multiway` k-way distinct-count scenario and the group-job tests.
pub fn distinct_group_pool(arity: usize, items_per_instance: u64) -> Vec<Instance> {
    assert!(arity >= 1, "group workload needs at least one instance");
    (0..arity as u64)
        .map(|i| {
            let lo = i * items_per_instance / 2;
            Instance::from_pairs(
                (lo..lo + items_per_instance)
                    .map(move |k| (k, 0.05 + 0.9 * (((k * 13 + i * 31 + 7) % 89) as f64 / 89.0))),
            )
        })
        .collect()
}

/// Key-pure weight of the planted-pair pool: a mod-89 lattice like
/// [`distinct_group_pool`]'s, but a function of the key *alone* — shared
/// keys carry identical weights in every instance, so their priority
/// ranks coincide and coordinated sketches of overlapping instances
/// agree item for item (the property banded signatures rely on).
fn planted_weight(key: u64) -> f64 {
    0.05 + 0.9 * (((key.wrapping_mul(13) + 7) % 89) as f64 / 89.0)
}

/// Key range where a planted instance's mutated-away items live: far
/// outside every base window, so mutations never alias pool keys.
const PLANTED_FRESH_BASE: u64 = 1 << 40;

/// The planted near-duplicate partner of instance `id`, if it has one:
/// [`planted_pair_pool`] replaces every instance with `id % period == 1`
/// by a mutated copy of instance `id - 1`.
pub fn planted_partner(id: u64, period: u64) -> Option<u64> {
    assert!(period >= 2, "planting needs a period of at least 2");
    if id % period == 1 {
        Some(id - 1)
    } else {
        None
    }
}

/// [`distinct_group_pool`] generalized to pool scale: `instances`
/// instances (any N up to the 10⁴–10⁶ all-pairs range) of
/// `items_per_instance` items each, with planted similar pairs.
///
/// Base instance `i` covers the half-overlapping window
/// `[i·n/2, i·n/2 + n)` — consecutive instances share half their support
/// (Jaccard ⅓), non-consecutive instances are disjoint. Every instance
/// with `i % period == 1` is replaced by a *planted near-duplicate* of
/// instance `i − 1`: the first 90% of the partner's window plus `n/10`
/// fresh far-away keys, a pair of support Jaccard
/// `(n − m)/(n + m) ≈ 0.85` (`m = n/10`). Weights are key-pure
/// ([`planted_weight`]'s lattice) so shared items sample identically
/// under any common salt.
///
/// Everything is a pure function of `(i, items_per_instance, period)`:
/// the pool prefix for a smaller N is a prefix of the pool for a larger
/// N, and regeneration is byte-identical everywhere.
///
/// # Panics
///
/// Panics if `items_per_instance < 10` (the 10% mutation would be empty)
/// or `period < 2`.
pub fn planted_pair_pool(instances: u64, items_per_instance: u64, period: u64) -> Vec<Instance> {
    assert!(
        items_per_instance >= 10,
        "planted pool needs at least 10 items per instance"
    );
    assert!(period >= 2, "planting needs a period of at least 2");
    let n = items_per_instance;
    let mutated = n / 10;
    (0..instances)
        .map(|i| {
            let base = planted_partner(i, period).unwrap_or(i);
            let lo = base * n / 2;
            let window = (lo..lo + n).map(|k| (k, planted_weight(k)));
            if base == i {
                Instance::from_pairs(window)
            } else {
                let fresh_lo = PLANTED_FRESH_BASE + i * n;
                Instance::from_pairs(
                    window
                        .take((n - mutated) as usize)
                        .chain((fresh_lo..fresh_lo + mutated).map(|k| (k, planted_weight(k)))),
                )
            }
        })
        .collect()
}

/// `randomizations` group jobs over one instance group, salted
/// `salt_base..salt_base + randomizations` — one coordinated sampling
/// run per job.
pub fn group_jobs(group: &[Instance], randomizations: u64, salt_base: u64) -> Vec<GroupJob<'_>> {
    (0..randomizations)
        .map(|r| GroupJob::new(group, salt_base + r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_deterministic_and_sized() {
        let a = rg1_instance_pool(32, 12);
        let b = rg1_instance_pool(32, 12);
        assert_eq!(a.len(), 32);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), 12);
            assert!(x.iter().zip(y.iter()).all(|(p, q)| p == q));
        }
        // Weights stay inside the PPS(1) sampling range.
        assert!(a
            .iter()
            .flat_map(|i| i.iter())
            .all(|(_, w)| w > 0.0 && w < 1.0));
    }

    #[test]
    fn group_pool_overlaps_and_jobs_are_salted() {
        let group = distinct_group_pool(4, 12);
        assert_eq!(group.len(), 4);
        for inst in &group {
            assert_eq!(inst.len(), 12);
            assert!(inst.iter().all(|(_, w)| w > 0.0 && w < 1.0));
        }
        // Consecutive windows share half their keys.
        let shared = group[0]
            .keys()
            .filter(|&k| group[1].weight(k) > 0.0)
            .count();
        assert_eq!(shared, 6);
        let jobs = group_jobs(&group, 5, 100);
        assert_eq!(jobs.len(), 5);
        assert_eq!(jobs[3].salt, 103);
        assert_eq!(jobs[0].arity(), 4);
        assert!(std::ptr::eq(jobs[0].instances.as_ptr(), group.as_ptr()));
    }

    #[test]
    fn planted_pool_shapes_and_weights() {
        let pool = planted_pair_pool(25, 40, 10);
        assert_eq!(pool.len(), 25);
        for inst in &pool {
            // Planted instances swap 4 window keys for 4 fresh keys, so
            // every instance keeps exactly 40 items in (0, 1) weights.
            assert_eq!(inst.len(), 40);
            assert!(inst.iter().all(|(_, w)| w > 0.0 && w < 1.0));
        }
        // Weights are key-pure: any shared key agrees across instances.
        for (k, w) in pool[0].iter() {
            let w1 = pool[1].weight(k);
            assert!(w1 == 0.0 || w1 == w, "key {k}: {w} vs {w1}");
        }
        // Determinism and prefix stability.
        let again = planted_pair_pool(25, 40, 10);
        let small = planted_pair_pool(5, 40, 10);
        for (i, inst) in pool.iter().enumerate() {
            assert!(inst.iter().zip(again[i].iter()).all(|(p, q)| p == q));
            if i < 5 {
                assert!(inst.iter().zip(small[i].iter()).all(|(p, q)| p == q));
            }
        }
    }

    #[test]
    fn planted_pairs_are_near_duplicates_and_others_overlap_by_half() {
        let pool = planted_pair_pool(30, 40, 10);
        let shared = |a: &Instance, b: &Instance| a.keys().filter(|&k| b.weight(k) > 0.0).count();
        for id in 0..30u64 {
            match planted_partner(id, 10) {
                Some(p) => {
                    assert_eq!(p, id - 1);
                    // 36 of 40 keys shared: support Jaccard 36/44 ≈ 0.82.
                    assert_eq!(shared(&pool[id as usize], &pool[p as usize]), 36);
                }
                None => assert!(id % 10 != 1),
            }
        }
        // Consecutive base windows share half their keys; a planted
        // instance is adjacent-disjoint from its successor.
        assert_eq!(shared(&pool[2], &pool[3]), 20);
        assert_eq!(shared(&pool[11], &pool[12]), 0);
        // Non-consecutive base windows are disjoint.
        assert_eq!(shared(&pool[2], &pool[4]), 0);
    }

    #[test]
    fn jobs_cycle_the_pool() {
        let pool = rg1_instance_pool(4, 3);
        let jobs = rg1_pair_jobs(&pool, 10);
        assert_eq!(jobs.len(), 10);
        assert_eq!(jobs[9].salt, 9);
        assert!(std::ptr::eq(jobs[5].a, &pool[1]));
        assert!(std::ptr::eq(jobs[5].b, &pool[0]));
    }
}
