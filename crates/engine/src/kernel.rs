//! Pluggable estimation kernels: the prepare-once / evaluate-per-item
//! layer behind [`Engine::run`](crate::Engine::run).
//!
//! A *kernel* is everything a query derives exactly once — the MEP, the
//! per-estimator dispatch (closed form where one is registered, generic
//! fallback otherwise), quadrature configuration — packaged behind the
//! [`EstimationKernel`] trait so the engine's batch loop is the same for
//! every function family, scheme, estimator set, **and arity**: the item
//! stream hands each kernel one shared seed plus the item's weights in
//! *every* instance of the job's group (a 2-slice for
//! [`PairJob`](crate::PairJob)s, an N-slice for
//! [`GroupJob`](crate::GroupJob)s). Workers share the kernel read-only
//! and thread a [`KernelScratch`] through the item loop, so the hot path
//! stays allocation-free.
//!
//! Three layers of customization:
//!
//! * **queries** ([`EngineQuery`](crate::EngineQuery)) cover the built-in
//!   function families over per-instance PPS scales — most callers stop
//!   here;
//! * **[`FuncKernel`]** accepts *any* [`ItemFn`] plus an explicit
//!   [`ClosedForms`] registration, for function families the query
//!   builder does not know about;
//! * **custom [`EstimationKernel`] impls** interpret the per-item
//!   `(key, weights, seed)` stream however they like — the scenario
//!   registry uses this for variance sweeps, estimate curves at probe
//!   seeds, sample-overlap counting, and sketch-pair workloads.
//!
//! Closed forms are not special-cased in the engine: each function family
//! *registers* the fast paths it has for a given scheme via
//! [`KernelFunc::closed_forms`], and [`FuncKernel`] resolves every
//! requested [`EstimatorKind`] against that registration when the kernel
//! is built — `RGp+` under a common scale registers
//! [`RgPlusLStar`]/[`RgPlusUStar`] (pair schemes only), the distinct-count
//! indicator registers its inverse-probability form for **any arity and
//! scale vector**, and everything else falls back to the generic
//! quadrature/integration estimators.
//!
//! # Examples
//!
//! A custom kernel that treats each item's weights as a full data vector
//! and "estimates" with the exact value — the oracle pattern the variance
//! and ratio scenarios build on:
//!
//! ```
//! use monotone_coord::instance::Instance;
//! use monotone_engine::{Engine, EstimationKernel, KernelScratch, PairJob};
//!
//! struct ExactOracle;
//! impl EstimationKernel for ExactOracle {
//!     fn labels(&self) -> Vec<String> {
//!         vec!["exact".to_owned()]
//!     }
//!     fn truth(&self, weights: &[f64]) -> f64 {
//!         (weights[0] - weights[1]).max(0.0)
//!     }
//!     fn evaluate(
//!         &self,
//!         _key: u64,
//!         weights: &[f64],
//!         _u: f64,
//!         _scratch: &mut KernelScratch,
//!         out: &mut [f64],
//!     ) -> monotone_core::Result<bool> {
//!         out[0] += (weights[0] - weights[1]).max(0.0);
//!         Ok(true)
//!     }
//! }
//!
//! let a = Instance::from_pairs([(1u64, 0.9), (2, 0.4)]);
//! let b = Instance::from_pairs([(1u64, 0.2)]);
//! let jobs = [PairJob::new(&a, &b, 0)];
//! let batch = Engine::with_threads(1).run_kernel(&jobs, &ExactOracle).unwrap();
//! assert_eq!(batch.pairs[0].estimates[0], batch.pairs[0].truth);
//! assert_eq!(batch.summaries[0].label, "exact");
//! ```
//!
//! # Writing a batch-aware kernel
//!
//! The engine's hot loop hands kernels one staged **chunk** at a time —
//! up to 64 items, weights row-major `[item][instance]`, seeds already
//! hashed — through
//! [`evaluate_many`](EstimationKernel::evaluate_many). The default
//! forwards to `evaluate` per item; overriding it hoists dispatch and
//! per-item setup out of the inner loop (the built-in [`FuncKernel`]
//! sweeps whole chunks through its closed forms this way). An override
//! must stay **bit-identical** to the per-item path: accumulate into
//! each `out` slot in item order, and skip items with no sampled
//! evidence instead of adding an explicit zero.
//!
//! ```
//! use monotone_coord::instance::Instance;
//! use monotone_engine::{Engine, EstimationKernel, KernelScratch, PairJob};
//!
//! /// Inverse-probability count of items sampled in the first instance
//! /// under PPS at scale 1 — item arithmetic so cheap that per-item
//! /// virtual dispatch is the dominant cost, the case worth batching.
//! struct SampledCount;
//!
//! fn eval_one(w: f64, u: f64, out: &mut [f64]) -> bool {
//!     let sampled = w > 0.0 && w >= u; // PPS threshold at scale 1
//!     if sampled {
//!         out[0] += 1.0 / w.min(1.0); // inverse inclusion probability
//!     }
//!     sampled
//! }
//!
//! impl EstimationKernel for SampledCount {
//!     fn labels(&self) -> Vec<String> {
//!         vec!["count".to_owned()]
//!     }
//!     fn truth(&self, weights: &[f64]) -> f64 {
//!         (weights[0] > 0.0) as u64 as f64
//!     }
//!     fn evaluate(
//!         &self,
//!         _key: u64,
//!         weights: &[f64],
//!         u: f64,
//!         _scratch: &mut KernelScratch,
//!         out: &mut [f64],
//!     ) -> monotone_core::Result<bool> {
//!         Ok(eval_one(weights[0], u, out))
//!     }
//!     // The batch entry point the engine actually calls — once per
//!     // chunk. One monomorphic sweep, no per-item virtual calls.
//!     fn evaluate_many(
//!         &self,
//!         _keys: &[u64],
//!         weights: &[f64],
//!         arity: usize,
//!         seeds: &[f64],
//!         _scratch: &mut KernelScratch,
//!         out: &mut [f64],
//!     ) -> monotone_core::Result<usize> {
//!         let mut sampled = 0;
//!         for (row, &u) in weights.chunks_exact(arity).zip(seeds) {
//!             sampled += eval_one(row[0], u, out) as usize;
//!         }
//!         Ok(sampled)
//!     }
//! }
//!
//! /// The same estimator without the override: the trait default runs
//! /// `evaluate` item by item.
//! struct PerItemCount;
//! impl EstimationKernel for PerItemCount {
//!     fn labels(&self) -> Vec<String> {
//!         vec!["count".to_owned()]
//!     }
//!     fn truth(&self, weights: &[f64]) -> f64 {
//!         (weights[0] > 0.0) as u64 as f64
//!     }
//!     fn evaluate(
//!         &self,
//!         _key: u64,
//!         weights: &[f64],
//!         u: f64,
//!         _scratch: &mut KernelScratch,
//!         out: &mut [f64],
//!     ) -> monotone_core::Result<bool> {
//!         Ok(eval_one(weights[0], u, out))
//!     }
//! }
//!
//! let a = Instance::from_pairs((0..200u64).map(|k| (k, 0.2 + (k % 7) as f64 / 10.0)));
//! let b = Instance::from_pairs((0..200u64).map(|k| (k, 0.4)));
//! let jobs: Vec<PairJob> = (0..8).map(|salt| PairJob::new(&a, &b, salt)).collect();
//! let engine = Engine::with_threads(1);
//! let batched = engine.run_kernel(&jobs, &SampledCount).unwrap();
//! let per_item = engine.run_kernel(&jobs, &PerItemCount).unwrap();
//! // The override is a pure execution-route change: bit-identical batch.
//! assert_eq!(batched, per_item);
//! // And unbiased: the mean count tracks the 200-item truth.
//! assert!((batched.summaries[0].mean_estimate - 200.0).abs() < 40.0);
//! ```
//!
//! [`RgPlusLStar`]: monotone_core::estimate::RgPlusLStar
//! [`RgPlusUStar`]: monotone_core::estimate::RgPlusUStar

use monotone_core::estimate::{
    DyadicJ, HorvitzThompson, LStar, MonotoneEstimator, RgPlusLStar, RgPlusUStar, UStar,
};
use monotone_core::func::{DistinctOr, ItemFn, LinearAbsPow, RangePowPlus, TupleMax, TupleMin};
use monotone_core::problem::{LbScratch, Mep};
use monotone_core::quad::QuadConfig;
use monotone_core::scheme::{EntryState, LinearThreshold, Outcome, TupleScheme};
use monotone_core::{Error, Result};

use super::EstimatorKind;

/// Reusable per-worker buffers threaded through a kernel's item loop:
/// a recycled [`Outcome`] entry vector, a sampled-values buffer, and the
/// lower-bound work vectors of the generic estimators. One scratch lives
/// per in-flight job, so batch loops pay zero allocations per sampled
/// item.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// Recycled outcome entry buffer (take with [`std::mem::take`], hand
    /// back via [`Outcome::into_parts`]).
    pub entries: Vec<EntryState>,
    /// Recycled per-instance sampled-value buffer (`Some(w)` where the
    /// item cleared its instance's threshold at the shared seed).
    pub values: Vec<Option<f64>>,
    /// Recycled lower-bound buffers for quadrature-backed estimators.
    pub lb: LbScratch,
}

impl KernelScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> KernelScratch {
        KernelScratch::default()
    }
}

/// Prepare-once per-query state with a per-item evaluation hot path —
/// what [`Engine::run_kernel`](crate::Engine::run_kernel) and
/// [`Engine::run_group_kernel`](crate::Engine::run_group_kernel) execute
/// over a batch of jobs.
///
/// The engine walks each job's item stream (the merged key union of the
/// job's instance group, or the job's domain), hashes the shared seeds in
/// bulk, and calls [`evaluate`](EstimationKernel::evaluate) once per
/// active item with the item's weights in every instance. How the
/// `(key, weights, seed)` tuple is interpreted is the kernel's business:
/// the built-in [`FuncKernel`] treats the weights as a sampled data
/// tuple, while oracle kernels (variance, ratio, curve scenarios) treat
/// them as fully known data and ignore the seed, and payload kernels
/// index kernel-held state by `key`.
///
/// # Contract
///
/// * Implementations must be deterministic functions of their inputs —
///   results land in index-preassigned slots, and the batch output must
///   be identical for every worker count.
/// * `evaluate` **adds** into `out` (one slot per label) and reports
///   whether the item carried sampled evidence.
/// * A kernel serves jobs of one arity: `weights.len()` is the job
///   group's instance count, the same for every item of a batch.
pub trait EstimationKernel: Sync {
    /// Estimator column labels, in result order — fixes the width of
    /// [`PairResult::estimates`](crate::PairResult::estimates) and names
    /// the batch summaries.
    fn labels(&self) -> Vec<String>;

    /// The group arity this kernel requires, when it requires one: the
    /// engine rejects jobs whose instance count differs (as
    /// [`Error::ArityMismatch`]) instead of streaming truncated weight
    /// tuples. The default, `None`, accepts any arity — payload and
    /// oracle kernels often ignore the weights entirely.
    fn arity(&self) -> Option<usize> {
        None
    }

    /// The exact contribution of one item (its weight in every instance
    /// of the group) to the job's target value (accumulated into
    /// [`PairResult::truth`](crate::PairResult::truth)).
    fn truth(&self, weights: &[f64]) -> f64;

    /// Evaluates every estimator column on one item at shared seed `u`,
    /// adding into `out`. Returns `Ok(true)` when the item carried
    /// sampled evidence (counted in `sampled_items`), `Ok(false)` when
    /// every estimator is an exact zero for it.
    ///
    /// # Errors
    ///
    /// Implementations propagate outcome-assembly or estimator errors;
    /// the engine aborts the batch on the first error.
    fn evaluate(
        &self,
        key: u64,
        weights: &[f64],
        u: f64,
        scratch: &mut KernelScratch,
        out: &mut [f64],
    ) -> Result<bool>;

    /// Evaluates every estimator column on a whole staged chunk of items
    /// at once, adding into `out` and returning how many items carried
    /// sampled evidence. `weights` is row-major `[item][instance]`
    /// (`keys.len() * arity` entries) and `seeds[i]` is item `i`'s shared
    /// seed — exactly the layout [`ChunkBufs`](crate::Engine) stages, so
    /// the engine's flush calls this once per chunk instead of once per
    /// item.
    ///
    /// The default forwards to [`evaluate`](EstimationKernel::evaluate)
    /// item by item, so existing kernels keep working unchanged.
    /// Batch-aware kernels override this to hoist dispatch and per-item
    /// setup out of the inner loop; overrides must stay **bit-identical**
    /// to the per-item path — accumulate into `out` slot by slot in item
    /// order, and skip items with no sampled evidence rather than adding
    /// an explicit zero.
    ///
    /// # Errors
    ///
    /// Propagates the first [`evaluate`](EstimationKernel::evaluate)
    /// error; the engine aborts the batch on it.
    fn evaluate_many(
        &self,
        keys: &[u64],
        weights: &[f64],
        arity: usize,
        seeds: &[f64],
        scratch: &mut KernelScratch,
        out: &mut [f64],
    ) -> Result<usize> {
        let mut sampled = 0;
        for (i, (&key, &u)) in keys.iter().zip(seeds).enumerate() {
            if self.evaluate(key, &weights[i * arity..(i + 1) * arity], u, scratch, out)? {
                sampled += 1;
            }
        }
        Ok(sampled)
    }
}

/// A closed-form per-item evaluator from raw sampled values (`None` =
/// capped entry) and the shared seed — the allocation-free fast path a
/// function family can register for a scheme.
#[derive(Debug, Clone, PartialEq)]
pub enum ClosedForm {
    /// [`RgPlusLStar`]: L\* for `RGp+`, `p ∈ {1, 2}`, common PPS scale
    /// (pair schemes).
    RgPlusL(RgPlusLStar),
    /// [`RgPlusUStar`]: U\* for `RGp+`, any `p > 0`, common PPS scale
    /// (pair schemes).
    RgPlusU(RgPlusUStar),
    /// L\* for the distinct-count OR indicator under per-instance PPS
    /// scales of **any arity**: the lower bound is a 0/1 step, so
    /// Eq. (31) collapses to the inverse of the largest inclusion
    /// probability among sampled entries (and coincides with
    /// Horvitz-Thompson).
    DistinctL {
        /// The per-instance PPS scales.
        scales: Vec<f64>,
    },
}

/// Backward-compatible name from the pair-only kernel layer.
pub type ClosedPairForm = ClosedForm;

impl ClosedForm {
    /// The estimate from the raw sampled values of every instance
    /// (`known[i] = Some(w)` iff instance `i` sampled the item) plus the
    /// shared seed.
    ///
    /// # Panics
    ///
    /// The `RGp+` forms are pair forms: they panic unless
    /// `known.len() == 2`.
    pub fn eval(&self, known: &[Option<f64>], u: f64) -> f64 {
        match self {
            ClosedForm::RgPlusL(c) => {
                assert_eq!(known.len(), 2, "RGp+ closed forms are pair forms");
                c.estimate_values(known[0], known[1], u)
            }
            ClosedForm::RgPlusU(c) => {
                assert_eq!(known.len(), 2, "RGp+ closed forms are pair forms");
                c.estimate_values(known[0], known[1], u)
            }
            ClosedForm::DistinctL { scales } => {
                let q = known
                    .iter()
                    .zip(scales)
                    .map(|(v, &s)| v.map_or(0.0, |w| (w / s).min(1.0)))
                    .fold(0.0f64, f64::max);
                if q > 0.0 {
                    1.0 / q
                } else {
                    0.0
                }
            }
        }
    }

    /// Pair-shaped convenience over [`ClosedForm::eval`] (kept from the
    /// arity-2 kernel layer).
    pub fn eval_pair(&self, v1: Option<f64>, v2: Option<f64>, u: f64) -> f64 {
        self.eval(&[v1, v2], u)
    }

    /// Chunk-wide evaluation over a row-major `[item][instance]` staged
    /// weight buffer plus the chunk's seeds, accumulating into `acc` one
    /// item at a time in item order and returning how many items carried
    /// sampled evidence (any instance's weight cleared its threshold —
    /// the same count every form observes, letting the caller take it
    /// from the first sweep for free). The threshold tests (`w ≥
    /// u·scale`) are fused into each form's sweep, and the variant match
    /// happens once per chunk instead of once per item, so the inner
    /// loops are monomorphic, allocation-free, and branch-predictable —
    /// bit-identical to the per-item path of
    /// [`FuncKernel::evaluate`](EstimationKernel::evaluate), because each
    /// item's sampled values come from the same comparisons, each
    /// estimate is added to the running accumulator in the same order,
    /// and items with no sampled entry are skipped (not added as an
    /// explicit zero).
    fn eval_chunk(
        &self,
        weights: &[f64],
        scales: &[f64],
        arity: usize,
        seeds: &[f64],
        acc: &mut f64,
    ) -> usize {
        let mut sampled = 0;
        match self {
            ClosedForm::RgPlusL(c) => {
                debug_assert_eq!(arity, 2, "RGp+ closed forms are pair forms");
                let (s0, s1) = (scales[0], scales[1]);
                for (row, &u) in weights.chunks_exact(2).zip(seeds) {
                    let (w0, w1) = (row[0], row[1]);
                    let v1 = (w0 > 0.0 && w0 >= u * s0).then_some(w0);
                    let v2 = (w1 > 0.0 && w1 >= u * s1).then_some(w1);
                    if v1.is_some() || v2.is_some() {
                        sampled += 1;
                        *acc += c.estimate_values(v1, v2, u);
                    }
                }
            }
            ClosedForm::RgPlusU(c) => {
                debug_assert_eq!(arity, 2, "RGp+ closed forms are pair forms");
                let (s0, s1) = (scales[0], scales[1]);
                for (row, &u) in weights.chunks_exact(2).zip(seeds) {
                    let (w0, w1) = (row[0], row[1]);
                    let v1 = (w0 > 0.0 && w0 >= u * s0).then_some(w0);
                    let v2 = (w1 > 0.0 && w1 >= u * s1).then_some(w1);
                    if v1.is_some() || v2.is_some() {
                        sampled += 1;
                        *acc += c.estimate_values(v1, v2, u);
                    }
                }
            }
            ClosedForm::DistinctL { scales } => {
                for (row, &u) in weights.chunks_exact(arity).zip(seeds) {
                    let mut q = 0.0f64;
                    for (&w, &s) in row.iter().zip(scales) {
                        if w > 0.0 && w >= u * s {
                            q = q.max((w / s).min(1.0));
                        }
                    }
                    // q > 0 iff any instance sampled (scales are finite
                    // and positive, so a sampled w > 0 gives w/s > 0).
                    if q > 0.0 {
                        sampled += 1;
                        *acc += 1.0 / q;
                    }
                }
            }
        }
        sampled
    }
}

/// The closed forms a function family registers for a scheme: the fast
/// paths [`FuncKernel`] dispatches to instead of the generic
/// quadrature/integration estimators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClosedForms {
    /// Closed-form L\*, when the family has one for the scheme.
    pub lstar: Option<ClosedForm>,
    /// Closed-form U\*.
    pub ustar: Option<ClosedForm>,
}

impl ClosedForms {
    /// No closed forms: every estimator uses its generic fallback.
    pub fn none() -> ClosedForms {
        ClosedForms::default()
    }
}

/// Closed-form registration hook: a function family inspects the
/// scheme's per-instance PPS scales (one per instance of the group) and
/// registers whatever fast paths it has. The default registers nothing —
/// generic fallbacks handle any [`ItemFn`] — so families only implement
/// this when they have something to say.
pub trait KernelFunc: ItemFn {
    /// The closed forms this family offers under per-instance PPS scales.
    fn closed_forms(&self, scales: &[f64]) -> ClosedForms {
        let _ = scales;
        ClosedForms::none()
    }
}

impl KernelFunc for RangePowPlus {
    /// `RGp+` registers its L\* closed form for `p ∈ {1, 2}` and its U\*
    /// closed form for every `p > 0` — but only for pair schemes under a
    /// *common* scale, where the Example 4 derivations hold.
    fn closed_forms(&self, scales: &[f64]) -> ClosedForms {
        // Degenerate scales register nothing — kernel construction reports
        // them as typed errors rather than closed-form constructor panics.
        if scales.len() != 2
            || scales[0] != scales[1]
            || !(scales[0].is_finite() && scales[0] > 0.0)
        {
            return ClosedForms::none();
        }
        let (p, scale) = (self.p(), scales[0]);
        let lstar = if p == 1.0 {
            Some(ClosedForm::RgPlusL(RgPlusLStar::new(1, scale)))
        } else if p == 2.0 {
            Some(ClosedForm::RgPlusL(RgPlusLStar::new(2, scale)))
        } else {
            None
        };
        ClosedForms {
            lstar,
            ustar: Some(ClosedForm::RgPlusU(RgPlusUStar::new(p, scale))),
        }
    }
}

impl KernelFunc for DistinctOr {
    /// The OR indicator's L\* collapses to inverse inclusion probability
    /// under any per-instance scale vector, at any arity.
    fn closed_forms(&self, scales: &[f64]) -> ClosedForms {
        ClosedForms {
            lstar: Some(ClosedForm::DistinctL {
                scales: scales.to_vec(),
            }),
            ustar: None,
        }
    }
}

impl KernelFunc for TupleMin {}
impl KernelFunc for TupleMax {}
impl KernelFunc for LinearAbsPow {}

/// Resolved dispatch for one requested estimator slot.
#[derive(Debug)]
enum KindEval {
    /// A registered closed form (no outcome materialization needed).
    Closed(ClosedForm),
    /// Generic quadrature-backed L\* (Eq. (31)).
    GenericL(LStar),
    /// Generic backward-integration U\* (Eq. (48)).
    GenericU(UStar),
    /// Horvitz-Thompson reveal detection.
    Ht(HorvitzThompson),
    /// The dyadic J baseline.
    J(DyadicJ),
}

/// The engine's standard kernel: any [`ItemFn`] over a coordinated
/// scheme with per-instance PPS scales — one scale per instance of the
/// job group, at any arity — evaluating a set of [`EstimatorKind`]s with
/// closed-form fast paths where the family registered them.
///
/// # Examples
///
/// ```
/// use monotone_core::func::TupleMax;
/// use monotone_core::quad::QuadConfig;
/// use monotone_coord::instance::Instance;
/// use monotone_engine::{Engine, EstimatorKind, FuncKernel, PairJob};
///
/// // max(v1, v2) aggregates under asymmetric PPS scales — no closed
/// // form registered, so L* runs through the generic quadrature path.
/// let kernel = FuncKernel::auto(
///     TupleMax::new(2),
///     &[1.0, 2.0],
///     &[EstimatorKind::LStar],
///     QuadConfig::fast(),
/// )
/// .unwrap();
/// let a = Instance::from_pairs((0..40u64).map(|k| (k, 0.3 + (k % 5) as f64 / 10.0)));
/// let b = Instance::from_pairs((0..40u64).map(|k| (k, 0.2 + (k % 7) as f64 / 10.0)));
/// let jobs: Vec<PairJob> = (0..8).map(|salt| PairJob::new(&a, &b, salt)).collect();
/// let batch = Engine::with_threads(2).run_kernel(&jobs, &kernel).unwrap();
/// assert!(batch.summaries[0].mean_truth > 0.0);
/// ```
#[derive(Debug)]
pub struct FuncKernel<F: ItemFn> {
    mep: Mep<F, LinearThreshold>,
    scales: Vec<f64>,
    kinds: Vec<EstimatorKind>,
    evals: Vec<KindEval>,
    /// Whether any slot needs a materialized [`Outcome`] (closed forms
    /// work from raw values).
    needs_outcome: bool,
}

impl<F: ItemFn + Sync> FuncKernel<F> {
    /// Builds a kernel from a function, per-instance scales (the arity of
    /// `f` fixes the group arity), an estimator set, the quadrature
    /// configuration for generic fallbacks, and an explicit closed-form
    /// registration (use [`FuncKernel::auto`] to let the family register
    /// its own).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidScale`] for non-finite or non-positive
    /// scales and [`Error::ArityMismatch`] when `f`'s arity differs from
    /// the scale count.
    pub fn new(
        f: F,
        scales: &[f64],
        kinds: &[EstimatorKind],
        quad: QuadConfig,
        closed: ClosedForms,
    ) -> Result<FuncKernel<F>> {
        for &s in scales {
            if !(s.is_finite() && s > 0.0) {
                return Err(Error::InvalidScale(s));
            }
        }
        let mep = Mep::new(f, TupleScheme::pps(scales)?)?;
        let evals: Vec<KindEval> = kinds
            .iter()
            .map(|kind| match kind {
                EstimatorKind::LStar => closed
                    .lstar
                    .clone()
                    .map(KindEval::Closed)
                    .unwrap_or_else(|| KindEval::GenericL(LStar::with_quad(quad))),
                EstimatorKind::UStar => closed
                    .ustar
                    .clone()
                    .map(KindEval::Closed)
                    .unwrap_or_else(|| KindEval::GenericU(UStar::new())),
                EstimatorKind::HorvitzThompson => KindEval::Ht(HorvitzThompson::new()),
                EstimatorKind::DyadicJ => KindEval::J(DyadicJ::new()),
            })
            .collect();
        let needs_outcome = evals.iter().any(|e| !matches!(e, KindEval::Closed(_)));
        Ok(FuncKernel {
            mep,
            scales: scales.to_vec(),
            kinds: kinds.to_vec(),
            evals,
            needs_outcome,
        })
    }

    /// [`FuncKernel::new`] with the closed forms the function family
    /// registers for these scales ([`KernelFunc::closed_forms`]).
    ///
    /// # Errors
    ///
    /// See [`FuncKernel::new`].
    pub fn auto(
        f: F,
        scales: &[f64],
        kinds: &[EstimatorKind],
        quad: QuadConfig,
    ) -> Result<FuncKernel<F>>
    where
        F: KernelFunc,
    {
        let closed = f.closed_forms(scales);
        FuncKernel::new(f, scales, kinds, quad, closed)
    }

    /// The estimator kinds, in result order.
    pub fn kinds(&self) -> &[EstimatorKind] {
        &self.kinds
    }

    /// Which slots resolved to a registered closed form.
    pub fn closed_slots(&self) -> Vec<bool> {
        self.evals
            .iter()
            .map(|e| matches!(e, KindEval::Closed(_)))
            .collect()
    }
}

impl<F: ItemFn + Sync> EstimationKernel for FuncKernel<F> {
    fn labels(&self) -> Vec<String> {
        self.kinds.iter().map(|k| k.name().to_owned()).collect()
    }

    fn arity(&self) -> Option<usize> {
        Some(self.scales.len())
    }

    fn truth(&self, weights: &[f64]) -> f64 {
        self.mep.f().eval(weights)
    }

    fn evaluate(
        &self,
        _key: u64,
        weights: &[f64],
        u: f64,
        scratch: &mut KernelScratch,
        out: &mut [f64],
    ) -> Result<bool> {
        // Sampled values per instance: known iff the weight clears the
        // instance's threshold at the shared seed.
        scratch.values.resize(weights.len(), None);
        let mut any = false;
        for ((&w, &s), slot) in weights.iter().zip(&self.scales).zip(&mut scratch.values) {
            let v = (w > 0.0 && w >= u * s).then_some(w);
            any |= v.is_some();
            *slot = v;
        }
        if !any {
            // No sampled evidence: every estimator here yields 0 (all-capped
            // outcomes have zero lower bound), exactly as the per-call query
            // path skips items absent from all samples.
            return Ok(false);
        }
        let outcome = if self.needs_outcome {
            // Recycle the entry buffer across items: from_parts consumes a
            // Vec, into_parts below hands it back.
            let mut entries = std::mem::take(&mut scratch.entries);
            entries.clear();
            entries.extend(
                scratch
                    .values
                    .iter()
                    .map(|v| v.map_or(EntryState::Capped, EntryState::Known)),
            );
            Some(Outcome::from_parts(u, entries)?)
        } else {
            None
        };
        {
            let outcome = outcome.as_ref();
            for (slot, eval) in self.evals.iter().enumerate() {
                out[slot] += match eval {
                    KindEval::Closed(form) => form.eval(&scratch.values, u),
                    KindEval::GenericL(l) => l.estimate_with(
                        &self.mep,
                        outcome.expect("outcome prepared"),
                        &mut scratch.lb,
                    ),
                    KindEval::GenericU(us) => {
                        us.estimate(&self.mep, outcome.expect("outcome prepared"))
                    }
                    KindEval::Ht(ht) => ht.estimate(&self.mep, outcome.expect("outcome prepared")),
                    KindEval::J(j) => j.estimate(&self.mep, outcome.expect("outcome prepared")),
                };
            }
        }
        if let Some(outcome) = outcome {
            scratch.entries = outcome.into_parts().1;
        }
        Ok(true)
    }

    /// Batch fast path: when every requested estimator resolved to a
    /// registered closed form, each form sweeps the whole staged chunk
    /// through [`ClosedForm::eval_chunk`] — the threshold tests run
    /// fused inside the sweep over the row-major weight staging, and
    /// virtual dispatch plus the estimator `match` leave the inner loop
    /// entirely. Any generic slot needs a materialized [`Outcome`] per
    /// item, so the kernel falls back to the per-item default in that
    /// case.
    fn evaluate_many(
        &self,
        keys: &[u64],
        weights: &[f64],
        arity: usize,
        seeds: &[f64],
        scratch: &mut KernelScratch,
        out: &mut [f64],
    ) -> Result<usize> {
        if self.needs_outcome {
            // Generic estimators materialize per-item outcomes; keep the
            // per-item loop (identical to the trait default).
            let mut sampled = 0;
            for (i, (&key, &u)) in keys.iter().zip(seeds).enumerate() {
                if self.evaluate(key, &weights[i * arity..(i + 1) * arity], u, scratch, out)? {
                    sampled += 1;
                }
            }
            return Ok(sampled);
        }
        debug_assert_eq!(arity, self.scales.len());
        // Every form's sweep observes the same sampled-evidence count
        // (any instance's weight cleared its threshold at the item's
        // seed), so the first sweep's count is the chunk's count — no
        // separate counting pass.
        let mut sampled = None;
        for (slot, eval) in self.evals.iter().enumerate() {
            match eval {
                KindEval::Closed(form) => {
                    let n = form.eval_chunk(weights, &self.scales, arity, seeds, &mut out[slot]);
                    debug_assert!(sampled.is_none_or(|s| s == n));
                    sampled.get_or_insert(n);
                }
                // Unreachable: needs_outcome is false only when every
                // slot is closed-form.
                _ => unreachable!("generic slot on the closed-form batch path"),
            }
        }
        let sampled = sampled.unwrap_or_else(|| {
            // A kernel with zero estimator slots still counts sampled
            // items, exactly as the per-item path's threshold loop does.
            weights
                .chunks_exact(arity)
                .zip(seeds)
                .filter(|(row, &u)| {
                    row.iter()
                        .zip(&self.scales)
                        .any(|(&w, &s)| w > 0.0 && w >= u * s)
                })
                .count()
        });
        Ok(sampled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rg_plus_registers_closed_forms_under_common_scale() {
        let forms = RangePowPlus::new(1.0).closed_forms(&[2.0, 2.0]);
        assert!(matches!(forms.lstar, Some(ClosedForm::RgPlusL(_))));
        assert!(matches!(forms.ustar, Some(ClosedForm::RgPlusU(_))));
        // No L* closed form away from p in {1, 2}; U* covers every p.
        let forms = RangePowPlus::new(1.5).closed_forms(&[1.0, 1.0]);
        assert!(forms.lstar.is_none());
        assert!(forms.ustar.is_some());
        // Per-instance scales: the Example 4 derivations do not apply.
        let forms = RangePowPlus::new(1.0).closed_forms(&[1.0, 2.0]);
        assert_eq!(forms, ClosedForms::none());
    }

    #[test]
    fn distinct_closed_form_is_inverse_inclusion_probability() {
        let forms = DistinctOr::new(2).closed_forms(&[1.0, 2.0]);
        let lstar = forms.lstar.expect("registered");
        assert!(forms.ustar.is_none());
        // Known entries 0.4 (prob 0.4) and 0.7 (prob 0.35): q = 0.4.
        let e = lstar.eval_pair(Some(0.4), Some(0.7), 0.1);
        assert!((e - 1.0 / 0.4).abs() < 1e-15, "got {e}");
        // Single known entry above its scale: prob 1, estimate 1.
        assert_eq!(lstar.eval_pair(None, Some(2.5), 0.9), 1.0);
        assert_eq!(lstar.eval_pair(None, None, 0.5), 0.0);
    }

    #[test]
    fn distinct_closed_form_generalizes_to_any_arity() {
        let forms = DistinctOr::new(4).closed_forms(&[1.0, 2.0, 4.0, 8.0]);
        let lstar = forms.lstar.expect("registered");
        // Probabilities 0.4, 0.35, capped, 0.05: q = 0.4.
        let e = lstar.eval(&[Some(0.4), Some(0.7), None, Some(0.4)], 0.1);
        assert!((e - 1.0 / 0.4).abs() < 1e-15, "got {e}");
        assert_eq!(lstar.eval(&[None, None, None, None], 0.5), 0.0);
    }

    #[test]
    fn distinct_closed_form_matches_generic_lstar() {
        use monotone_core::estimate::{LStar, MonotoneEstimator};
        let scales = [1.0, 2.0];
        let f = DistinctOr::new(2);
        let closed = f.closed_forms(&scales).lstar.unwrap();
        let mep = Mep::new(f, TupleScheme::pps(&scales).unwrap()).unwrap();
        let generic = LStar::new();
        for &v in &[[0.4, 0.7], [0.4, 0.0], [0.0, 1.9], [2.0, 3.0]] {
            for k in 1..=20 {
                let u = k as f64 / 20.0;
                let out = mep.scheme().sample(&v, u).unwrap();
                let a = closed.eval(&[out.known(0), out.known(1)], u);
                let b = generic.estimate(&mep, &out);
                assert!((a - b).abs() < 1e-9, "v={v:?} u={u}: closed {a} vs {b}");
            }
        }
    }

    #[test]
    fn distinct_closed_form_matches_generic_lstar_at_arity_three() {
        use monotone_core::estimate::{LStar, MonotoneEstimator};
        let scales = [1.0, 2.0, 0.5];
        let f = DistinctOr::new(3);
        let closed = f.closed_forms(&scales).lstar.unwrap();
        let mep = Mep::new(f, TupleScheme::pps(&scales).unwrap()).unwrap();
        let generic = LStar::new();
        for &v in &[[0.4, 0.7, 0.0], [0.0, 0.0, 0.3], [2.0, 3.0, 1.0]] {
            for k in 1..=20 {
                let u = k as f64 / 20.0;
                let out = mep.scheme().sample(&v, u).unwrap();
                let a = closed.eval(&[out.known(0), out.known(1), out.known(2)], u);
                let b = generic.estimate(&mep, &out);
                assert!((a - b).abs() < 1e-9, "v={v:?} u={u}: closed {a} vs {b}");
            }
        }
    }

    #[test]
    fn func_kernel_rejects_bad_scales() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(FuncKernel::auto(
                RangePowPlus::new(1.0),
                &[1.0, bad],
                &[EstimatorKind::LStar],
                QuadConfig::fast(),
            )
            .is_err());
        }
        // Arity mismatch between function and scale vector is typed too.
        assert!(FuncKernel::auto(
            DistinctOr::new(3),
            &[1.0, 1.0],
            &[EstimatorKind::LStar],
            QuadConfig::fast(),
        )
        .is_err());
    }

    #[test]
    fn closed_slots_reflect_registration() {
        let kernel = FuncKernel::auto(
            RangePowPlus::new(1.0),
            &[1.0, 1.0],
            &[
                EstimatorKind::LStar,
                EstimatorKind::UStar,
                EstimatorKind::HorvitzThompson,
            ],
            QuadConfig::fast(),
        )
        .unwrap();
        assert_eq!(kernel.closed_slots(), vec![true, true, false]);
        let generic = FuncKernel::new(
            RangePowPlus::new(1.0),
            &[1.0, 1.0],
            &[EstimatorKind::LStar],
            QuadConfig::fast(),
            ClosedForms::none(),
        )
        .unwrap();
        assert_eq!(generic.closed_slots(), vec![false]);
    }
}
