//! The engine must be a faster route to the *same* numbers: every batch
//! result is checked against the per-call `query::estimate_sum` path, and
//! results must be identical for every worker count.

use monotone_coord::instance::{Dataset, Instance};
use monotone_coord::pps::CoordPps;
use monotone_coord::query::{estimate_sum, exact_sum};
use monotone_coord::seed::SeedHasher;
use monotone_core::estimate::{DyadicJ, HorvitzThompson, LStar, RgPlusLStar, RgPlusUStar};
use monotone_core::func::{DistinctOr, RangePowPlus};
use monotone_core::quad::QuadConfig;
use monotone_engine::{Engine, EngineQuery, EstimatorKind, GroupJob, PairJob};

fn instance_pair(n: u64) -> (Instance, Instance) {
    let a = Instance::from_pairs((0..n).map(|k| (k, 0.1 + 0.8 * ((k * 13 % 101) as f64 / 101.0))));
    let b = Instance::from_pairs(
        (0..n)
            .filter(|k| k % 5 != 0) // some items absent from b
            .map(|k| (k, 0.1 + 0.8 * ((k * 29 % 101) as f64 / 101.0))),
    );
    (a, b)
}

#[test]
fn matches_per_call_path_closed_form_p1() {
    let (a, b) = instance_pair(300);
    let data = Dataset::new(vec![a.clone(), b.clone()]);
    let f = RangePowPlus::new(1.0);
    let jobs: Vec<PairJob> = (0..8).map(|salt| PairJob::new(&a, &b, salt)).collect();
    let query = EngineQuery::rg_plus(1.0, 1.0).with_estimators(&[
        EstimatorKind::LStar,
        EstimatorKind::UStar,
        EstimatorKind::HorvitzThompson,
        EstimatorKind::DyadicJ,
    ]);
    let batch = Engine::with_threads(2).run(&jobs, &query).unwrap();

    let truth = exact_sum(&f, &data, None);
    for (salt, pair) in batch.pairs.iter().enumerate() {
        assert!((pair.truth - truth).abs() < 1e-9 * truth.max(1.0));
        let sampler = CoordPps::uniform_scale(2, 1.0, SeedHasher::new(salt as u64));
        let samples = sampler.sample_all(&data);
        let expect = [
            estimate_sum(f, &RgPlusLStar::new(1, 1.0), &sampler, &samples, None).unwrap(),
            estimate_sum(f, &RgPlusUStar::new(1.0, 1.0), &sampler, &samples, None).unwrap(),
            estimate_sum(f, &HorvitzThompson::new(), &sampler, &samples, None).unwrap(),
            estimate_sum(f, &DyadicJ::new(), &sampler, &samples, None).unwrap(),
        ];
        for (i, &e) in expect.iter().enumerate() {
            assert!(
                (pair.estimates[i] - e).abs() <= 1e-9 * e.abs().max(1.0),
                "salt {salt} estimator {i}: engine {} vs per-call {e}",
                pair.estimates[i]
            );
        }
    }
}

#[test]
fn matches_per_call_path_generic_fallback() {
    // p = 1.5 has no closed-form L*: the engine must dispatch to the same
    // quadrature-backed generic estimator the per-call path uses.
    let (a, b) = instance_pair(80);
    let data = Dataset::new(vec![a.clone(), b.clone()]);
    let f = RangePowPlus::new(1.5);
    let quad = QuadConfig::fast();
    let jobs: Vec<PairJob> = (0..3)
        .map(|salt| PairJob::new(&a, &b, 100 + salt))
        .collect();
    let query = EngineQuery::rg_plus(1.5, 1.0)
        .with_estimators(&[EstimatorKind::LStar])
        .with_quad(quad);
    let batch = Engine::with_threads(3).run(&jobs, &query).unwrap();
    for (i, pair) in batch.pairs.iter().enumerate() {
        let sampler = CoordPps::uniform_scale(2, 1.0, SeedHasher::new(100 + i as u64));
        let samples = sampler.sample_all(&data);
        let expect = estimate_sum(f, &LStar::with_quad(quad), &sampler, &samples, None).unwrap();
        assert!(
            (pair.estimates[0] - expect).abs() <= 1e-9 * expect.abs().max(1.0),
            "job {i}: engine {} vs per-call {expect}",
            pair.estimates[0]
        );
    }
}

#[test]
fn domain_restriction_matches_per_call_path() {
    let (a, b) = instance_pair(200);
    let data = Dataset::new(vec![a.clone(), b.clone()]);
    let f = RangePowPlus::new(1.0);
    let domain: Vec<u64> = (0..50).collect();
    let jobs: Vec<PairJob> = (0..4)
        .map(|salt| PairJob::new(&a, &b, salt).with_domain(&domain))
        .collect();
    let query = EngineQuery::rg_plus(1.0, 1.0);
    let batch = Engine::with_threads(2).run(&jobs, &query).unwrap();
    let truth = exact_sum(&f, &data, Some(&domain));
    for (salt, pair) in batch.pairs.iter().enumerate() {
        assert!((pair.truth - truth).abs() < 1e-12);
        let sampler = CoordPps::uniform_scale(2, 1.0, SeedHasher::new(salt as u64));
        let samples = sampler.sample_all(&data);
        let expect = estimate_sum(
            f,
            &RgPlusLStar::new(1, 1.0),
            &sampler,
            &samples,
            Some(&domain),
        )
        .unwrap();
        assert!((pair.estimates[0] - expect).abs() <= 1e-12 * expect.abs().max(1.0));
    }
}

#[test]
fn deterministic_across_thread_counts() {
    let (a, b) = instance_pair(150);
    let jobs: Vec<PairJob> = (0..13).map(|salt| PairJob::new(&a, &b, salt)).collect();
    let query = EngineQuery::rg_plus(2.0, 2.0)
        .with_estimators(&[EstimatorKind::LStar, EstimatorKind::UStar]);
    let reference = Engine::with_threads(1).run(&jobs, &query).unwrap();
    for threads in [2, 3, 8] {
        let batch = Engine::with_threads(threads).run(&jobs, &query).unwrap();
        assert_eq!(batch, reference, "results differ at {threads} threads");
    }
}

#[test]
fn summaries_track_unbiasedness() {
    // Across many salts the mean L* estimate approaches the exact value and
    // the NRMSE is modest — the engine's summary must reflect that.
    let (a, b) = instance_pair(400);
    let jobs: Vec<PairJob> = (0..64).map(|salt| PairJob::new(&a, &b, salt)).collect();
    let query = EngineQuery::rg_plus(1.0, 1.0);
    let batch = Engine::new().run(&jobs, &query).unwrap();
    let s = &batch.summaries[0];
    assert_eq!(s.label, EstimatorKind::LStar.name());
    assert!(
        (s.mean_estimate - s.mean_truth).abs() < 0.1 * s.mean_truth,
        "mean {} vs truth {}",
        s.mean_estimate,
        s.mean_truth
    );
    assert!(s.nrmse < 0.5, "nrmse {}", s.nrmse);
    assert!(batch.total_sampled_items > 0);
}

#[test]
fn with_estimators_dedups_repeated_kinds() {
    // Regression: a duplicate kind used to keep both copies, double-
    // counting its column in `summaries` (and paying the estimate twice).
    let query = EngineQuery::rg_plus(1.0, 1.0).with_estimators(&[
        EstimatorKind::LStar,
        EstimatorKind::UStar,
        EstimatorKind::LStar,
        EstimatorKind::HorvitzThompson,
        EstimatorKind::UStar,
    ]);
    assert_eq!(
        query.estimators(),
        &[
            EstimatorKind::LStar,
            EstimatorKind::UStar,
            EstimatorKind::HorvitzThompson
        ],
        "first occurrence wins, duplicates dropped"
    );
    let (a, b) = instance_pair(60);
    let jobs = [PairJob::new(&a, &b, 5)];
    let batch = Engine::with_threads(1).run(&jobs, &query).unwrap();
    assert_eq!(batch.summaries.len(), 3);
    assert_eq!(batch.pairs[0].estimates.len(), 3);
    let labels: Vec<&str> = batch.summaries.iter().map(|s| s.label.as_str()).collect();
    assert_eq!(labels, vec!["L*", "U*", "HT"]);
}

#[test]
fn fixed_seed_jobs_sample_every_item_at_that_seed() {
    // A with_seed job must behave exactly like hashing if every item's
    // hashed seed were the fixed value: compare against estimate_values
    // at the shared probe seed.
    let (a, b) = instance_pair(80);
    let closed = RgPlusLStar::new(1, 1.0);
    for &u in &[0.05, 0.35, 0.75, 1.0] {
        let jobs = [PairJob::new(&a, &b, 9).with_seed(u)];
        let query = EngineQuery::rg_plus(1.0, 1.0);
        let batch = Engine::with_threads(2).run(&jobs, &query).unwrap();
        let expect: f64 = monotone_coord::instance::merged_weights(&a, &b)
            .map(|(_, wa, wb)| {
                let v1 = (wa > 0.0 && wa >= u).then_some(wa);
                let v2 = (wb > 0.0 && wb >= u).then_some(wb);
                closed.estimate_values(v1, v2, u)
            })
            .sum();
        assert_eq!(batch.pairs[0].estimates[0], expect, "u={u}");
    }
}

#[test]
fn distinct_query_counts_active_union() {
    // Distinct-count queries run through the OR indicator's registered
    // closed form; the truth is the union size and the mean estimate over
    // many randomizations approaches it.
    let (a, b) = instance_pair(300);
    let union = monotone_coord::instance::merged_weights(&a, &b).count() as f64;
    let jobs: Vec<PairJob> = (0..48).map(|salt| PairJob::new(&a, &b, salt)).collect();
    let query = EngineQuery::distinct(2.0);
    let batch = Engine::new().run(&jobs, &query).unwrap();
    let s = &batch.summaries[0];
    assert_eq!(s.mean_truth, union);
    assert!(
        (s.mean_estimate - union).abs() < 0.05 * union,
        "mean {} vs union {union}",
        s.mean_estimate
    );
}

#[test]
fn engine_empty_batch_is_defined() {
    // Regression (verified failing first): an empty job batch used to
    // fabricate per-column summaries whose means were the empty f64 sum
    // (-0.0) over a clamped denominator. A mean over zero jobs is
    // undefined — empty batches return empty summaries instead.
    let query = EngineQuery::rg_plus(1.0, 1.0)
        .with_estimators(&[EstimatorKind::LStar, EstimatorKind::UStar]);
    let batch = Engine::with_threads(4).run(&[], &query).unwrap();
    assert!(batch.pairs.is_empty());
    assert!(
        batch.summaries.is_empty(),
        "no jobs → no per-column statistics, got {:?}",
        batch.summaries
    );
    assert_eq!(batch.total_sampled_items, 0);
    // Same contract on the group path and for custom-width kernels.
    let batch = Engine::with_threads(4)
        .run_groups(&[], &EngineQuery::distinct_k(3, 1.0))
        .unwrap();
    assert!(batch.pairs.is_empty() && batch.summaries.is_empty());
}

#[test]
fn arity2_group_jobs_reproduce_pair_jobs_bitwise() {
    // The GroupJob path (N-way merge cursor) and the PairJob path (pair
    // merge) must produce bit-identical batches at arity 2 — including
    // summaries — for hashed, fixed-seed, and domain-restricted jobs.
    let (a, b) = instance_pair(250);
    let group = [a.clone(), b.clone()];
    let domain: Vec<u64> = (40..160).collect();
    let query = EngineQuery::rg_plus(1.0, 1.0).with_estimators(&[
        EstimatorKind::LStar,
        EstimatorKind::UStar,
        EstimatorKind::HorvitzThompson,
        EstimatorKind::DyadicJ,
    ]);
    let pair_jobs: Vec<PairJob> = (0..9)
        .map(|salt| PairJob::new(&a, &b, salt))
        .chain([PairJob::new(&a, &b, 3).with_seed(0.4)])
        .chain([PairJob::new(&a, &b, 5).with_domain(&domain)])
        .collect();
    let group_jobs: Vec<GroupJob> = (0..9)
        .map(|salt| GroupJob::new(&group, salt))
        .chain([GroupJob::new(&group, 3).with_seed(0.4)])
        .chain([GroupJob::new(&group, 5).with_domain(&domain)])
        .collect();
    for threads in [1, 3] {
        let engine = Engine::with_threads(threads);
        let pair_batch = engine.run(&pair_jobs, &query).unwrap();
        let group_batch = engine.run_groups(&group_jobs, &query).unwrap();
        assert_eq!(pair_batch, group_batch, "threads={threads}");
    }
}

#[test]
fn three_way_distinct_matches_per_call_path() {
    // An arity-3 distinct count through the engine (closed form and
    // generic) must agree with the per-call estimate_sum route over the
    // same coordinated samples.
    let a =
        Instance::from_pairs((0..120u64).map(|k| (k, 0.1 + 0.8 * ((k * 7 % 13) as f64 / 13.0))));
    let b =
        Instance::from_pairs((40..170u64).map(|k| (k, 0.1 + 0.8 * ((k * 3 % 11) as f64 / 11.0))));
    let c = Instance::from_pairs((90..220u64).map(|k| (k, 0.1 + 0.8 * ((k * 5 % 7) as f64 / 7.0))));
    let data = Dataset::new(vec![a, b, c]);
    let scale = 2.0;
    let quad = QuadConfig::fast();
    let jobs: Vec<GroupJob> = (0..6)
        .map(|salt| GroupJob::new(data.instances(), salt))
        .collect();
    let query = EngineQuery::distinct_k(3, scale).with_quad(quad);
    let closed = Engine::with_threads(2).run_groups(&jobs, &query).unwrap();
    let generic = Engine::with_threads(2)
        .run_groups(&jobs, &query.clone().without_closed_forms())
        .unwrap();
    assert_eq!(closed.pairs[0].truth, data.union_keys().len() as f64);
    for (salt, (cp, gp)) in closed.pairs.iter().zip(&generic.pairs).enumerate() {
        let sampler = CoordPps::uniform_scale(3, scale, SeedHasher::new(salt as u64));
        let samples = sampler.sample_all(&data);
        let expect = estimate_sum(
            DistinctOr::new(3),
            &LStar::with_quad(quad),
            &sampler,
            &samples,
            None,
        )
        .unwrap();
        for (label, got) in [("closed", cp.estimates[0]), ("generic", gp.estimates[0])] {
            assert!(
                (got - expect).abs() <= 1e-6 * expect.abs().max(1.0),
                "salt {salt} {label}: engine {got} vs per-call {expect}"
            );
        }
    }
}

#[test]
fn group_fixed_seed_jobs_sample_every_item_at_that_seed() {
    // The fixed-seed (probe-curve) path never hashes: every item of the
    // group samples at exactly the probe seed — pinned bit-identically
    // against a hand-rolled closed-form loop, at several worker counts.
    let a =
        Instance::from_pairs((0..90u64).map(|k| (k, 0.1 + 0.8 * ((k * 13 % 101) as f64 / 101.0))));
    let b = Instance::from_pairs(
        (30..130u64).map(|k| (k, 0.1 + 0.8 * ((k * 29 % 101) as f64 / 101.0))),
    );
    let c = Instance::from_pairs(
        (60..170u64).map(|k| (k, 0.1 + 0.8 * ((k * 31 % 101) as f64 / 101.0))),
    );
    let group = [a, b, c];
    let data = Dataset::new(group.to_vec());
    let scale = 1.5;
    for &u in &[0.05, 0.35, 0.75, 1.0] {
        let jobs = [GroupJob::new(&group, 9).with_seed(u)];
        let query = EngineQuery::distinct_k(3, scale);
        let batch = Engine::with_threads(2).run_groups(&jobs, &query).unwrap();
        let mut tuple = vec![0.0; data.arity()];
        let expect: f64 = data
            .union_keys()
            .iter()
            .map(|&k| {
                data.tuple_into(k, &mut tuple);
                let q = tuple
                    .iter()
                    .filter(|&&w| w > 0.0 && w >= u * scale)
                    .map(|&w| (w / scale).min(1.0))
                    .fold(0.0f64, f64::max);
                if q > 0.0 {
                    1.0 / q
                } else {
                    0.0
                }
            })
            .sum();
        assert_eq!(batch.pairs[0].estimates[0], expect, "u={u}");
    }
}

#[test]
fn group_arity_must_match_query_arity() {
    // A 2-instance group under a 3-way query must fail loudly, not
    // stream truncated weight tuples.
    let (a, b) = instance_pair(20);
    let group = [a, b];
    let jobs = [GroupJob::new(&group, 0)];
    let err = Engine::with_threads(1)
        .run_groups(&jobs, &EngineQuery::distinct_k(3, 1.0))
        .unwrap_err();
    assert!(
        format!("{err}").contains("arity"),
        "expected an arity error, got {err}"
    );
    // Same guard on the pair path: a pair job cannot run a 3-way query.
    let (a, b) = instance_pair(20);
    let jobs = [PairJob::new(&a, &b, 0)];
    assert!(Engine::with_threads(1)
        .run(&jobs, &EngineQuery::distinct_k(3, 1.0))
        .is_err());
}

#[test]
fn rejects_invalid_scale() {
    let (a, b) = instance_pair(10);
    let jobs = [PairJob::new(&a, &b, 0)];
    for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        let query = EngineQuery::rg_plus(1.0, bad);
        assert!(
            Engine::new().run(&jobs, &query).is_err(),
            "scale {bad} must be rejected"
        );
    }
}

#[test]
fn negative_raw_weights_are_typed_errors_not_misestimates() {
    // Regression: the explicit-domain path used to skip items whose
    // weights were all <= 0 but *stream* a negative weight into kernels
    // whenever the partner entry was positive — a silent misestimate for
    // raw-ingested (unvalidated) instances. Every route (pair + group,
    // merged union + explicit domain) must instead report the item as a
    // typed InvalidWeight error.
    let mut poisoned = Instance::from_pairs([(0u64, 0.6), (2, 0.4)]);
    poisoned.set_raw(1, -0.3); // raw ingest: negative weight stored verbatim
    let clean = Instance::from_pairs([(0u64, 0.5), (1, 0.9), (2, 0.2)]);
    let query = EngineQuery::rg_plus(1.0, 1.0);
    let expected = monotone_core::Error::InvalidWeight {
        key: 1,
        weight: -0.3,
    };
    let engine = Engine::with_threads(1);

    // Pair path, explicit domain (the originally reported route): the
    // partner weight 0.9 is positive, so the item used to stream through.
    let domain = [0u64, 1, 2];
    let jobs = [PairJob::new(&poisoned, &clean, 7).with_domain(&domain)];
    assert_eq!(engine.run(&jobs, &query).unwrap_err(), expected);

    // Pair path, merged union stream.
    let jobs = [PairJob::new(&poisoned, &clean, 7)];
    assert_eq!(engine.run(&jobs, &query).unwrap_err(), expected);

    // Group path, explicit domain and merged union.
    let group = [poisoned.clone(), clean.clone(), clean.clone()];
    let gquery = EngineQuery::distinct_k(3, 1.0);
    let jobs = [GroupJob::new(&group, 7).with_domain(&domain)];
    assert_eq!(engine.run_groups(&jobs, &gquery).unwrap_err(), expected);
    let jobs = [GroupJob::new(&group, 7)];
    assert_eq!(engine.run_groups(&jobs, &gquery).unwrap_err(), expected);

    // Non-finite raw weights are rejected the same way.
    let mut nan_inst = Instance::from_pairs([(0u64, 0.6)]);
    nan_inst.set_raw(5, f64::NAN);
    let jobs = [PairJob::new(&nan_inst, &clean, 7)];
    match engine.run(&jobs, &query).unwrap_err() {
        monotone_core::Error::InvalidWeight { key: 5, weight } => assert!(weight.is_nan()),
        other => panic!("expected InvalidWeight for the NaN item, got {other:?}"),
    }
}
