//! Property tests of the kernel layer: the generic kernel architecture
//! (merged item stream, bulk seed hashing, per-slot dispatch) must
//! reproduce the `RgPlusLStar`/`RgPlusUStar` closed forms exactly — the
//! refactor-correctness contract behind the engine's byte-identical-CSV
//! guarantee.

use monotone_coord::instance::{merged_weights, Instance};
use monotone_coord::seed::SeedHasher;
use monotone_core::estimate::{RgPlusLStar, RgPlusUStar};
use monotone_engine::{Engine, EngineQuery, EstimatorKind, GroupJob, PairJob};
use proptest::prelude::*;

/// Sparse weight maps mixing sub-scale and truncated (above-scale)
/// weights, with disjoint-support holes.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    proptest::collection::vec((0u64..300, 1u32..=300), 1..70).prop_map(|pairs| {
        Instance::from_pairs(pairs.into_iter().map(|(k, w)| (k, w as f64 / 100.0)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40).with_rng_seed(0x2014_0615_0004))]

    /// Engine batches through the generic kernel path equal a hand-rolled
    /// per-item closed-form loop to <= 1e-12 relative error, across
    /// seeds, weights, scales, and p in {1, 2} — for both the L* and U*
    /// columns, at several worker counts.
    #[test]
    fn kernel_path_matches_closed_forms(
        a in instance_strategy(),
        b in instance_strategy(),
        salt in any::<u64>(),
        p in 1u8..=2,
        scale_idx in 1u32..=4,
    ) {
        let scale = scale_idx as f64 / 2.0; // 0.5, 1.0, 1.5, 2.0
        let closed_l = RgPlusLStar::new(p, scale);
        let closed_u = RgPlusUStar::new(p as f64, scale);
        let seeder = SeedHasher::new(salt);
        let (mut expect_l, mut expect_u) = (0.0f64, 0.0f64);
        for (key, wa, wb) in merged_weights(&a, &b) {
            let u = seeder.seed(key);
            let v1 = (wa > 0.0 && wa >= u * scale).then_some(wa);
            let v2 = (wb > 0.0 && wb >= u * scale).then_some(wb);
            expect_l += closed_l.estimate_values(v1, v2, u);
            expect_u += closed_u.estimate_values(v1, v2, u);
        }

        let jobs = [PairJob::new(&a, &b, salt)];
        let query = EngineQuery::rg_plus(p as f64, scale)
            .with_estimators(&[EstimatorKind::LStar, EstimatorKind::UStar]);
        for threads in [1, 3] {
            let batch = Engine::with_threads(threads).run(&jobs, &query).unwrap();
            let got_l = batch.pairs[0].estimates[0];
            let got_u = batch.pairs[0].estimates[1];
            prop_assert!(
                (got_l - expect_l).abs() <= 1e-12 * expect_l.abs().max(1.0),
                "L*: kernel {} vs closed loop {} (p={}, scale={})",
                got_l, expect_l, p, scale
            );
            prop_assert!(
                (got_u - expect_u).abs() <= 1e-12 * expect_u.abs().max(1.0),
                "U*: kernel {} vs closed loop {} (p={}, scale={})",
                got_u, expect_u, p, scale
            );
        }
    }

    /// An arity-2 GroupJob must reproduce the corresponding PairJob batch
    /// **exactly** (bitwise-equal results and summaries): the N-way merge
    /// cursor and the pair merge walk the same item stream through the
    /// same kernel arithmetic — across weights, salts, scales, fixed
    /// probe seeds, and worker counts.
    #[test]
    fn arity2_group_job_reproduces_pair_job_exactly(
        a in instance_strategy(),
        b in instance_strategy(),
        salt in any::<u64>(),
        scale_idx in 1u32..=4,
        probe in 0u32..=20, // 0 = hashed seeds, 1..=20 = fixed probe seed p/20
    ) {
        let scale = scale_idx as f64 / 2.0;
        let group = [a.clone(), b.clone()];
        let (mut pair_job, mut group_job) =
            (PairJob::new(&a, &b, salt), GroupJob::new(&group, salt));
        if probe > 0 {
            let u = probe as f64 / 20.0;
            pair_job = pair_job.with_seed(u);
            group_job = group_job.with_seed(u);
        }
        for query in [
            EngineQuery::rg_plus(1.0, scale)
                .with_estimators(&[EstimatorKind::LStar, EstimatorKind::UStar]),
            EngineQuery::distinct(scale),
        ] {
            for threads in [1, 3] {
                let engine = Engine::with_threads(threads);
                let from_pair = engine.run(&[pair_job], &query).unwrap();
                let from_group = engine.run_groups(&[group_job], &query).unwrap();
                prop_assert_eq!(
                    &from_pair, &from_group,
                    "pair and group batches diverged (threads={})", threads
                );
            }
        }
    }

    /// Disabling closed forms routes L* through generic quadrature, which
    /// must agree with the closed form to quadrature accuracy — the
    /// dispatch decision changes the route, never the estimand.
    #[test]
    fn generic_fallback_agrees_with_closed_form(
        a in instance_strategy(),
        salt in any::<u64>(),
    ) {
        let b = Instance::from_pairs(a.iter().map(|(k, w)| (k, (w * 0.7).min(1.0))));
        let jobs = [PairJob::new(&a, &b, salt)];
        let closed = Engine::with_threads(1)
            .run(&jobs, &EngineQuery::rg_plus(1.0, 1.0))
            .unwrap();
        let generic = Engine::with_threads(1)
            .run(&jobs, &EngineQuery::rg_plus(1.0, 1.0).without_closed_forms())
            .unwrap();
        let (c, g) = (closed.pairs[0].estimates[0], generic.pairs[0].estimates[0]);
        prop_assert!(
            (c - g).abs() <= 1e-6 * c.abs().max(1.0),
            "closed {} vs generic {}",
            c,
            g
        );
    }
}

proptest! {
    // Fewer cases than the accuracy block above: each case sweeps four
    // kernels over every chunk-boundary length, including the
    // quadrature-backed fallbacks, so a dozen (seed, scale, p, probe)
    // draws already exercise every dispatch route at every boundary.
    #![proptest_config(ProptestConfig::with_cases(12).with_rng_seed(0x2014_0615_0006))]

    /// [`EstimationKernel::evaluate_many`] must equal the per-item
    /// `evaluate` loop **bit for bit** — same estimate bits, same sampled
    /// count — across closed-form (chunk fast path), generic-fallback,
    /// mixed, and arity-3 distinct kernels, on both hashed and fixed
    /// probe seeds, at chunk-boundary lengths 1, 63, 64, 65, 4096.
    #[test]
    fn evaluate_many_is_bit_identical_to_per_item_evaluate(
        salt in any::<u64>(),
        scale_idx in 1u32..=4,
        p in 1u8..=2,
        probe in 0u32..=20, // 0 = hashed seeds, 1..=20 = fixed probe seed p/20
    ) {
        use monotone_core::func::{DistinctOr, RangePowPlus};
        use monotone_core::quad::QuadConfig;
        use monotone_engine::{ClosedForms, EstimationKernel, FuncKernel, KernelScratch};

        let scale = scale_idx as f64 / 2.0;
        let kinds_lu = [EstimatorKind::LStar, EstimatorKind::UStar];
        let closed =
            FuncKernel::auto(RangePowPlus::new(p as f64), &[scale, scale], &kinds_lu, QuadConfig::fast())
                .unwrap();
        let generic = FuncKernel::new(
            RangePowPlus::new(p as f64),
            &[scale, scale],
            &kinds_lu,
            QuadConfig::fast(),
            ClosedForms::none(),
        )
        .unwrap();
        let mixed = FuncKernel::auto(
            RangePowPlus::new(p as f64),
            &[scale, scale],
            &[EstimatorKind::LStar, EstimatorKind::HorvitzThompson],
            QuadConfig::fast(),
        )
        .unwrap();
        let distinct3 =
            FuncKernel::auto(DistinctOr::new(3), &[scale, 1.0, 2.0], &[EstimatorKind::LStar], QuadConfig::fast())
                .unwrap();
        // Quadrature-backed kernels get the boundary lengths only; the
        // closed-form chunk path also gets a multi-chunk 4096 sweep.
        let kernels: [(&dyn EstimationKernel, usize, &[usize]); 4] = [
            (&closed, 2, &[1, 63, 64, 65, 4096]),
            (&generic, 2, &[1, 63, 64, 65]),
            (&mixed, 2, &[1, 63, 64, 65]),
            (&distinct3, 3, &[1, 63, 64, 65, 4096]),
        ];
        let wgen = SeedHasher::new(salt ^ 0xabcd_ef01_2345_6789);
        let seeder = SeedHasher::new(salt);
        for (kernel, arity, lengths) in kernels {
            let width = kernel.labels().len();
            for &n in lengths {
                let keys: Vec<u64> = (0..n as u64).collect();
                // Weights mix holes (0.0), sub-scale, and truncated values.
                let weights: Vec<f64> = (0..n * arity)
                    .map(|i| {
                        if i % 7 == 0 {
                            0.0
                        } else {
                            (wgen.seed(i as u64) * 300.0 * scale).floor() / 100.0
                        }
                    })
                    .collect();
                let mut seeds = vec![0.0; n];
                if probe == 0 {
                    seeder.seed_many(&keys, &mut seeds);
                } else {
                    seeds.fill(probe as f64 / 20.0); // fixed-seed probe path
                }
                let mut scratch = KernelScratch::new();
                let (mut out_many, mut out_item) = (vec![0.0; width], vec![0.0; width]);
                let sampled_many = kernel
                    .evaluate_many(&keys, &weights, arity, &seeds, &mut scratch, &mut out_many)
                    .unwrap();
                let mut sampled_item = 0;
                for (i, (&key, &u)) in keys.iter().zip(&seeds).enumerate() {
                    let ws = &weights[i * arity..(i + 1) * arity];
                    if kernel.evaluate(key, ws, u, &mut scratch, &mut out_item).unwrap() {
                        sampled_item += 1;
                    }
                }
                prop_assert_eq!(sampled_many, sampled_item, "sampled count at n={}", n);
                for (slot, (a, b)) in out_many.iter().zip(&out_item).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "slot {} diverged at n={}: batch {} vs per-item {}",
                        slot, n, a, b
                    );
                }
            }
        }
    }
}
