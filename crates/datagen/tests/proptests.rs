//! Property-based tests of the workload generators.

use monotone_coord::query::weighted_jaccard;
use monotone_datagen::pairs::{drifting_panel, flow_like, stable_like, PairConfig};
use monotone_datagen::zipf::{pareto, Zipf};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24).with_rng_seed(0x2014_0615_0004))]

    /// Pair generators always produce normalized positive weights and are
    /// deterministic in the RNG seed.
    #[test]
    fn pairs_normalized_and_deterministic(seed in any::<u64>(), keys in 50usize..400) {
        let mut cfg = PairConfig::flow();
        cfg.keys = keys;
        let d1 = flow_like(&cfg, &mut rand::rngs::StdRng::seed_from_u64(seed));
        let d2 = flow_like(&cfg, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert_eq!(&d1, &d2);
        for inst in d1.instances() {
            prop_assert!(inst.max_weight() <= 1.0 + 1e-12);
            prop_assert!(inst.iter().all(|(_, w)| w > 0.0 && w.is_finite()));
        }
    }

    /// The stable family is always more self-similar than the flow family
    /// generated from the same seed.
    #[test]
    fn stable_more_similar_than_flow(seed in any::<u64>()) {
        let mut fc = PairConfig::flow();
        fc.keys = 500;
        let mut sc = PairConfig::stable();
        sc.keys = 500;
        let flow = flow_like(&fc, &mut rand::rngs::StdRng::seed_from_u64(seed));
        let stable = stable_like(&sc, &mut rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(1)));
        let jf = weighted_jaccard(flow.instance(0), flow.instance(1));
        let js = weighted_jaccard(stable.instance(0), stable.instance(1));
        prop_assert!(js > jf, "stable {} should exceed flow {}", js, jf);
    }

    /// Drifting panels have the requested shape and aligned keys.
    #[test]
    fn panel_shape(seed in any::<u64>(), r in 2usize..5, keys in 20usize..100) {
        let d = drifting_panel(keys, r, 1.5, 0.2, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert_eq!(d.arity(), r);
        for inst in d.instances() {
            prop_assert_eq!(inst.len(), keys);
        }
        prop_assert_eq!(d.union_keys().len(), keys);
    }

    /// Zipf pmf is a decreasing probability distribution; samples stay in
    /// range.
    #[test]
    fn zipf_is_distribution(n in 2usize..200, s_pct in 30u32..300, seed in any::<u64>()) {
        let z = Zipf::new(n, s_pct as f64 / 100.0);
        let total: f64 = (1..=n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for i in 2..=n {
            prop_assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-15);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&x));
        }
    }

    /// Pareto draws are at least the scale and heavy-tailed but finite.
    #[test]
    fn pareto_in_range(seed in any::<u64>(), alpha_pct in 50u32..400) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let x = pareto(&mut rng, 1.0, alpha_pct as f64 / 100.0);
            prop_assert!(x >= 1.0 && x.is_finite());
        }
    }
}
