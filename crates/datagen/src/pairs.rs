//! Instance-pair generators standing in for the companion experiments'
//! datasets (paper, Section 7 / \[7\]).
//!
//! * [`flow_like`] mimics IP-flow records across two time windows: Zipf
//!   weights with large multiplicative churn plus key births and deaths —
//!   instances with typically *large* per-key differences, where the U\*
//!   estimator is expected to dominate;
//! * [`stable_like`] mimics surname frequencies across publication years:
//!   the same keys with small relative drift — *similar* instances, where
//!   L\* is expected to dominate.
//!
//! Both return two-instance [`Dataset`]s normalized to weights in `(0, 1]`
//! so a PPS scale of `1/rate` gives per-item sampling probability
//! `≈ rate · weight`.

use monotone_coord::instance::{Dataset, Instance};
use rand::{Rng, RngExt};

use crate::zipf::{lognormal_factor, pareto};

/// Parameters for the pair generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairConfig {
    /// Number of item keys in the base instance.
    pub keys: usize,
    /// Pareto tail exponent of the base weights (lower = heavier tail).
    pub tail: f64,
    /// Multiplicative churn strength (log-normal sigma).
    pub churn_sigma: f64,
    /// Probability that a key disappears from the second instance.
    pub death_prob: f64,
    /// Number of keys that appear only in the second instance, as a
    /// fraction of `keys`.
    pub birth_frac: f64,
}

impl PairConfig {
    /// IP-flow-like defaults: heavy tail and strong churn.
    pub fn flow() -> PairConfig {
        PairConfig {
            keys: 2000,
            tail: 1.2,
            churn_sigma: 1.2,
            death_prob: 0.2,
            birth_frac: 0.2,
        }
    }

    /// Surnames-like defaults: mild tail, tiny drift, no birth/death.
    pub fn stable() -> PairConfig {
        PairConfig {
            keys: 2000,
            tail: 1.5,
            churn_sigma: 0.08,
            death_prob: 0.0,
            birth_frac: 0.0,
        }
    }
}

fn generate_pair<R: Rng + ?Sized>(cfg: &PairConfig, rng: &mut R) -> Dataset {
    let mut a = Vec::with_capacity(cfg.keys);
    let mut b = Vec::with_capacity(cfg.keys);
    let mut max_w: f64 = 0.0;
    for key in 0..cfg.keys as u64 {
        let w1 = pareto(rng, 1.0, cfg.tail);
        let dead = rng.random::<f64>() < cfg.death_prob;
        let w2 = if dead {
            0.0
        } else {
            w1 * lognormal_factor(rng, cfg.churn_sigma)
        };
        max_w = max_w.max(w1).max(w2);
        a.push((key, w1));
        b.push((key, w2));
    }
    let births = (cfg.keys as f64 * cfg.birth_frac) as u64;
    for j in 0..births {
        let key = cfg.keys as u64 + j;
        let w2 = pareto(rng, 1.0, cfg.tail);
        max_w = max_w.max(w2);
        b.push((key, w2));
    }
    // Normalize into (0, 1].
    let inv = 1.0 / max_w;
    Dataset::new(vec![
        Instance::from_pairs(a.into_iter().map(|(k, w)| (k, w * inv))),
        Instance::from_pairs(b.into_iter().map(|(k, w)| (k, w * inv))),
    ])
}

/// An IP-flow-like pair: heavy-tailed weights, strong churn, key birth and
/// death — large per-key differences.
pub fn flow_like<R: Rng + ?Sized>(cfg: &PairConfig, rng: &mut R) -> Dataset {
    generate_pair(cfg, rng)
}

/// A surnames-like pair: the same keys with small relative drift — small
/// per-key differences.
pub fn stable_like<R: Rng + ?Sized>(cfg: &PairConfig, rng: &mut R) -> Dataset {
    generate_pair(cfg, rng)
}

/// A panel of `r` instances following a base instance with per-instance
/// drift `sigma` (temperature-style repeated measurements; used for
/// `RGp`-over-r experiments).
pub fn drifting_panel<R: Rng + ?Sized>(
    keys: usize,
    r: usize,
    tail: f64,
    sigma: f64,
    rng: &mut R,
) -> Dataset {
    assert!(r >= 1, "need at least one instance");
    let base: Vec<f64> = (0..keys).map(|_| pareto(rng, 1.0, tail)).collect();
    let mut rows: Vec<Vec<(u64, f64)>> = vec![Vec::with_capacity(keys); r];
    let mut max_w: f64 = 0.0;
    for (key, &w) in base.iter().enumerate() {
        for row in rows.iter_mut() {
            let wi = w * lognormal_factor(rng, sigma);
            max_w = max_w.max(wi);
            row.push((key as u64, wi));
        }
    }
    let inv = 1.0 / max_w;
    Dataset::new(
        rows.into_iter()
            .map(|row| Instance::from_pairs(row.into_iter().map(|(k, w)| (k, w * inv))))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use monotone_coord::query::weighted_jaccard;
    use rand::SeedableRng;

    #[test]
    fn flow_pairs_are_dissimilar_stable_pairs_similar() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let flow = flow_like(&PairConfig::flow(), &mut rng);
        let stable = stable_like(&PairConfig::stable(), &mut rng);
        let j_flow = weighted_jaccard(flow.instance(0), flow.instance(1));
        let j_stable = weighted_jaccard(stable.instance(0), stable.instance(1));
        assert!(
            j_stable > 0.9,
            "stable pair should be near-identical, jaccard {j_stable}"
        );
        assert!(
            j_flow < 0.6,
            "flow pair should differ substantially, jaccard {j_flow}"
        );
    }

    #[test]
    fn weights_normalized_to_unit_interval() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let d = flow_like(&PairConfig::flow(), &mut rng);
        for inst in d.instances() {
            assert!(inst.max_weight() <= 1.0 + 1e-12);
            assert!(inst.iter().all(|(_, w)| w > 0.0));
        }
        assert!(d.instance(0).max_weight() == 1.0 || d.instance(1).max_weight() == 1.0);
    }

    #[test]
    fn births_and_deaths_present_in_flow() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let cfg = PairConfig::flow();
        let d = flow_like(&cfg, &mut rng);
        let (a, b) = (d.instance(0), d.instance(1));
        let deaths = a.keys().filter(|&k| b.weight(k) == 0.0).count();
        let births = b.keys().filter(|&k| a.weight(k) == 0.0).count();
        assert!(deaths > 0, "expected deaths");
        assert!(births > 0, "expected births");
    }

    #[test]
    fn drifting_panel_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let d = drifting_panel(100, 4, 1.5, 0.1, &mut rng);
        assert_eq!(d.arity(), 4);
        assert_eq!(d.instance(0).len(), 100);
        // Small drift: tuples nearly constant.
        let t = d.tuple(5);
        let spread =
            t.iter().cloned().fold(f64::MIN, f64::max) - t.iter().cloned().fold(f64::MAX, f64::min);
        let level = t.iter().cloned().fold(f64::MIN, f64::max);
        assert!(spread < level, "spread {spread} vs level {level}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = flow_like(
            &PairConfig::flow(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        let b = flow_like(
            &PairConfig::flow(),
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        assert_eq!(a, b);
    }
}
