//! Random-graph generators for the similarity experiments (standing in for
//! the social networks of the paper's companion study \[9\]).

use monotone_sketches::graph::{Graph, GraphBuilder};
use rand::{Rng, RngExt};

/// Erdős–Rényi `G(n, p)` with edge weights uniform in `[lo, hi]`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or the weight range is invalid.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, lo: f64, hi: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    assert!(0.0 < lo && lo <= hi, "invalid weight range");
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.random::<f64>() < p {
                let w = lo + (hi - lo) * rng.random::<f64>();
                b.add_undirected(u, v, w);
            }
        }
    }
    b.build()
}

/// Preferential-attachment (Barabási–Albert) graph: each new node attaches
/// to `m` existing nodes chosen proportionally to degree, with weights
/// uniform in `[lo, hi]`. Degree skew mimics social networks.
///
/// # Panics
///
/// Panics if `m == 0`, `n <= m`, or the weight range is invalid.
pub fn preferential_attachment<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    assert!(0.0 < lo && lo <= hi, "invalid weight range");
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoints list: sampling an element uniformly is sampling a
    // node proportionally to its degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    // Seed clique over the first m+1 nodes.
    for u in 0..=(m as u32) {
        for v in (u + 1)..=(m as u32) {
            let w = lo + (hi - lo) * rng.random::<f64>();
            b.add_undirected(u, v, w);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in (m as u32 + 1)..(n as u32) {
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 100 * m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != u && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        for &t in &chosen {
            let w = lo + (hi - lo) * rng.random::<f64>();
            b.add_undirected(u, t, w);
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    b.build()
}

/// A `rows × cols` grid with 4-neighbor connectivity and jittered weights
/// (a low-expansion contrast case).
///
/// # Panics
///
/// Panics if either dimension is 0 or the weight range is invalid.
pub fn grid<R: Rng + ?Sized>(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut R) -> Graph {
    assert!(rows > 0 && cols > 0, "empty grid");
    assert!(0.0 < lo && lo <= hi, "invalid weight range");
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let w = lo + (hi - lo) * rng.random::<f64>();
                b.add_undirected(id(r, c), id(r, c + 1), w);
            }
            if r + 1 < rows {
                let w = lo + (hi - lo) * rng.random::<f64>();
                b.add_undirected(id(r, c), id(r + 1, c), w);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_edge_count() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 100;
        let p = 0.1;
        let g = erdos_renyi(n, p, 0.5, 1.5, &mut rng);
        let expect = (n * (n - 1) / 2) as f64 * p;
        let got = g.arc_count() as f64 / 2.0;
        assert!(
            (got - expect).abs() < 0.25 * expect,
            "edges {got} vs {expect}"
        );
    }

    #[test]
    fn preferential_attachment_is_skewed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let n = 500;
        let g = preferential_attachment(n, 3, 1.0, 1.0, &mut rng);
        let mut degs: Vec<usize> = (0..n as u32).map(|u| g.degree(u)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // Hubs: the max degree should far exceed the median.
        let median = degs[n / 2];
        assert!(
            degs[0] > 4 * median,
            "max degree {} vs median {median}",
            degs[0]
        );
    }

    #[test]
    fn grid_structure() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = grid(5, 4, 1.0, 1.0, &mut rng);
        assert_eq!(g.node_count(), 20);
        // Interior nodes have degree 4, corners 2.
        assert_eq!(g.degree(0), 2);
        let interior = 5u32; // row 1, col 1 of the 5x4 grid
        assert_eq!(g.degree(interior), 4);
    }

    #[test]
    fn graphs_connected_enough_for_sketches() {
        // Preferential attachment graphs are connected by construction.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let g = preferential_attachment(200, 2, 0.5, 1.5, &mut rng);
        let d = monotone_sketches::dijkstra::dijkstra(&g, 0);
        assert!(
            d.iter().all(|x| x.is_finite()),
            "PA graph must be connected"
        );
    }
}
