//! Heavy-tailed weight generators (Zipf and Pareto).
//!
//! The paper's companion experiments run on IP-flow records and word
//! frequencies — both strongly heavy-tailed. These generators reproduce
//! that shape synthetically.

use rand::{Rng, RngExt};

/// Zipf-distributed ranks over `{1, …, n}` with exponent `s`:
/// `P(X = i) ∝ i^{-s}`, sampled by inverse CDF over precomputed cumulative
/// weights.
///
/// # Examples
///
/// ```
/// use monotone_datagen::zipf::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(1000, 1.1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = zipf.sample(&mut rng);
/// assert!((1..=1000).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for support size `n` and exponent `s > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "support must be nonempty");
        assert!(s.is_finite() && s > 0.0, "exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 1..=n {
            total += (i as f64).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// The probability of rank `i` (1-based).
    pub fn pmf(&self, i: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&i), "rank out of range");
        if i == 1 {
            self.cdf[0]
        } else {
            self.cdf[i - 1] - self.cdf[i - 2]
        }
    }
}

/// A Pareto-distributed weight: `scale · u^{-1/alpha}`, heavy-tailed with
/// tail exponent `alpha`.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, scale: f64, alpha: f64) -> f64 {
    debug_assert!(scale > 0.0 && alpha > 0.0);
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    scale * u.powf(-1.0 / alpha)
}

/// A log-normal multiplicative factor `exp(sigma · Z)` with `Z ~ N(0, 1)`
/// (Box-Muller; used to model churn between instances).
pub fn lognormal_factor<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (1..=50).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_matches_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let trials = 200_000;
        let mut counts = [0usize; 10];
        for _ in 0..trials {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for i in 1..=10 {
            let emp = counts[i - 1] as f64 / trials as f64;
            let expect = z.pmf(i);
            assert!(
                (emp - expect).abs() < 0.01,
                "rank {i}: empirical {emp} vs pmf {expect}"
            );
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(1000, 1.5);
        assert!(z.pmf(1) > z.pmf(2));
        assert!(z.pmf(2) > z.pmf(100));
    }

    #[test]
    fn pareto_heavy_tail() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut max: f64 = 0.0;
        let mut count_large = 0;
        for _ in 0..10_000 {
            let x = pareto(&mut rng, 1.0, 1.0);
            assert!(x >= 1.0);
            max = max.max(x);
            if x > 100.0 {
                count_large += 1;
            }
        }
        assert!(max > 1000.0, "expected a heavy tail, max {max}");
        // P(X > 100) = 1/100 for alpha = 1.
        assert!((count_large as f64 / 10_000.0 - 0.01).abs() < 0.01);
    }

    #[test]
    fn lognormal_centered_around_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut log_sum = 0.0;
        for _ in 0..20_000 {
            log_sum += lognormal_factor(&mut rng, 0.5).ln();
        }
        let mean_log = log_sum / 20_000.0;
        assert!(mean_log.abs() < 0.02, "mean log {mean_log}");
    }
}
