//! # monotone-datagen
//!
//! Synthetic workload generators for the reproduction of Cohen,
//! *"Estimation for Monotone Sampling"* (PODC 2014).
//!
//! The companion experiments of the paper (Section 7) use proprietary data:
//! IP-flow records, surname frequencies in published books, and social
//! networks. This crate substitutes distributionally-faithful synthetic
//! equivalents (see `DESIGN.md` §5 for the substitution argument):
//!
//! * [`zipf`] — heavy-tailed weights (Zipf ranks, Pareto tails, log-normal
//!   churn factors);
//! * [`pairs`] — two-instance datasets: [`pairs::flow_like`] (large
//!   differences) and [`pairs::stable_like`] (small drift), plus
//!   `r`-instance drifting panels;
//! * [`graphs`] — Erdős–Rényi, preferential-attachment and grid graphs for
//!   the closeness-similarity experiments.
//!
//! All generators are deterministic given an `rng` seed.

pub mod graphs;
pub mod pairs;
pub mod zipf;
