//! Property-based tests (proptest) of the crate-spanning invariants listed
//! in DESIGN.md §7.

use monotone_sampling::coord::seed::SeedHasher;
use monotone_sampling::core::estimate::{
    DyadicJ, HorvitzThompson, LStar, MonotoneEstimator, RgPlusLStar, RgPlusUStar,
};
use monotone_sampling::core::func::{ItemFn, RangePow, RangePowPlus, TupleMax};
use monotone_sampling::core::problem::Mep;
use monotone_sampling::core::quad::{integrate_with_breakpoints, QuadConfig};
use monotone_sampling::core::scheme::TupleScheme;
use proptest::prelude::*;

fn value() -> impl Strategy<Value = f64> {
    (0u32..=100).prop_map(|k| k as f64 / 100.0)
}

fn seed() -> impl Strategy<Value = f64> {
    (1u32..=100).prop_map(|k| k as f64 / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64).with_rng_seed(0x2014_0615_0005))]

    /// Monotone sampling: smaller seeds give at least as much information
    /// (known entries stay known, caps shrink).
    #[test]
    fn sampling_monotone_in_seed(v1 in value(), v2 in value(), u in seed(), frac in 1u32..=99) {
        let scheme = TupleScheme::pps(&[1.0, 1.0]).unwrap();
        let u_fine = u * frac as f64 / 100.0;
        prop_assume!(u_fine > 0.0);
        let coarse = scheme.sample(&[v1, v2], u).unwrap();
        let fine = scheme.sample(&[v1, v2], u_fine).unwrap();
        for i in 0..2 {
            if coarse.known(i).is_some() {
                prop_assert_eq!(coarse.known(i), fine.known(i));
            }
        }
    }

    /// The lower-bound function is nonnegative, non-increasing in u, and
    /// bounded by f(v).
    #[test]
    fn lower_bound_invariants(v1 in value(), v2 in value(), v3 in value()) {
        let mep = Mep::new(RangePow::new(1.0, 3), TupleScheme::pps(&[1.0, 1.0, 1.0]).unwrap()).unwrap();
        let v = [v1, v2, v3];
        let lb = mep.data_lower_bound(&v).unwrap();
        let target = mep.f().eval(&v);
        let mut prev = f64::INFINITY;
        for k in 1..=50 {
            let u = k as f64 / 50.0;
            let x = lb.eval(u);
            prop_assert!(x >= -1e-12);
            prop_assert!(x <= target + 1e-12);
            prop_assert!(x <= prev + 1e-12);
            prev = x;
        }
    }

    /// Nonnegativity of every estimator on arbitrary outcomes.
    #[test]
    fn estimates_nonnegative(v1 in value(), v2 in value(), u in seed()) {
        let mep = Mep::new(RangePowPlus::new(1.0), TupleScheme::pps(&[1.0, 1.0]).unwrap()).unwrap();
        let out = mep.scheme().sample(&[v1, v2], u).unwrap();
        prop_assert!(RgPlusLStar::new(1, 1.0).estimate(&mep, &out) >= 0.0);
        prop_assert!(RgPlusUStar::new(1.0, 1.0).estimate(&mep, &out) >= 0.0);
        prop_assert!(HorvitzThompson::new().estimate(&mep, &out) >= 0.0);
        prop_assert!(DyadicJ::new().estimate(&mep, &out) >= 0.0);
    }

    /// Unbiasedness of the L* closed form on arbitrary data (numeric
    /// integration over the seed).
    #[test]
    fn lstar_unbiased(v1 in value(), v2 in value()) {
        prop_assume!(v1 > 0.02);
        let mep = Mep::new(RangePowPlus::new(1.0), TupleScheme::pps(&[1.0, 1.0]).unwrap()).unwrap();
        let est = RgPlusLStar::new(1, 1.0);
        let cfg = QuadConfig::default();
        let mean = integrate_with_breakpoints(
            |u| est.estimate(&mep, &mep.scheme().sample(&[v1, v2], u).unwrap()),
            1e-9,
            1.0,
            &[v1, v2],
            &cfg,
        );
        let expect = (v1 - v2).max(0.0);
        prop_assert!((mean - expect).abs() < 2e-3 * expect.max(0.05),
            "v=({}, {}): mean {} vs {}", v1, v2, mean, expect);
    }

    /// The L* estimate is monotone non-increasing in the seed for fixed data.
    #[test]
    fn lstar_monotone(v1 in value(), v2 in value()) {
        let mep = Mep::new(RangePowPlus::new(2.0), TupleScheme::pps(&[1.0, 1.0]).unwrap()).unwrap();
        let est = RgPlusLStar::new(2, 1.0);
        let mut prev = f64::INFINITY;
        for k in 1..=40 {
            let u = k as f64 / 40.0;
            let e = est.estimate(&mep, &mep.scheme().sample(&[v1, v2], u).unwrap());
            prop_assert!(e <= prev + 1e-9);
            prev = e;
        }
    }

    /// Generic L* equals the closed form on arbitrary outcomes.
    #[test]
    fn generic_lstar_matches_closed(v1 in value(), v2 in value(), u in seed()) {
        let mep = Mep::new(RangePowPlus::new(1.0), TupleScheme::pps(&[1.0, 1.0]).unwrap()).unwrap();
        let out = mep.scheme().sample(&[v1, v2], u).unwrap();
        let a = RgPlusLStar::new(1, 1.0).estimate(&mep, &out);
        let b = LStar::new().estimate(&mep, &out);
        prop_assert!((a - b).abs() < 1e-7 * a.max(1.0), "{} vs {}", a, b);
    }

    /// Hash seeds are deterministic, salted, and in (0, 1].
    #[test]
    fn seed_hash_properties(key in any::<u64>(), salt in any::<u64>()) {
        let h = SeedHasher::new(salt);
        let u = h.seed(key);
        prop_assert!(u > 0.0 && u <= 1.0);
        prop_assert_eq!(u, SeedHasher::new(salt).seed(key));
    }

    /// TupleMax box extrema bracket the value of any consistent completion.
    #[test]
    fn box_extrema_bracket(v1 in value(), v2 in value(), u in seed(), z in value()) {
        let f = TupleMax::new(2);
        let scheme = TupleScheme::pps(&[1.0, 1.0]).unwrap();
        let out = scheme.sample(&[v1, v2], u).unwrap();
        let mut known = Vec::new();
        let mut caps = Vec::new();
        scheme.states_at(&out, u, &mut known, &mut caps);
        // Build a consistent completion: keep knowns, clamp z into caps.
        let zv: Vec<f64> = (0..2)
            .map(|i| known[i].unwrap_or_else(|| z * caps[i]))
            .collect();
        let fv = f.eval(&zv);
        prop_assert!(f.box_inf(&known, &caps) <= fv + 1e-12);
        prop_assert!(f.box_sup(&known, &caps) >= fv - 1e-12);
    }
}
