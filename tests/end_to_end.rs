//! End-to-end pipeline tests: generators → coordinated sampling → per-item
//! monotone estimation → sum aggregates; and sketches → HIP → similarity.

use monotone_sampling::coord::bottomk::{BottomK, RankMethod};
use monotone_sampling::coord::instance::{Dataset, Instance};
use monotone_sampling::coord::pps::{scale_for_expected_size, CoordPps};
use monotone_sampling::coord::query::{estimate_sum, exact_sum, weighted_jaccard};
use monotone_sampling::coord::seed::SeedHasher;
use monotone_sampling::core::estimate::{LStar, MonotoneEstimator, RgPlusLStar, RgPlusUStar};
use monotone_sampling::core::func::{ItemFn, RangePowPlus};
use monotone_sampling::core::problem::Mep;
use monotone_sampling::datagen::pairs::{flow_like, stable_like, PairConfig};
use monotone_sampling::sketches::ads::build_all_ads;
use monotone_sampling::sketches::closeness::{exact_sums, ClosenessEstimator};
use rand::SeedableRng;

/// Unbiasedness of the full PPS pipeline on generated data, for both L*
/// and U* closed forms, averaged over coordinated randomizations.
#[test]
fn pps_pipeline_unbiased_on_generated_data() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let mut cfg = PairConfig::flow();
    cfg.keys = 300;
    let data = flow_like(&cfg, &mut rng);
    let f = RangePowPlus::new(1.0);
    let truth = exact_sum(&f, &data, None);
    let scale = scale_for_expected_size(data.instance(0), 60.0);

    let mut mean_l = 0.0;
    let mut mean_u = 0.0;
    let trials = 400;
    for salt in 0..trials {
        let sampler = CoordPps::uniform_scale(2, scale, SeedHasher::new(salt));
        let samples = sampler.sample_all(&data);
        mean_l += estimate_sum(f, &RgPlusLStar::new(1, scale), &sampler, &samples, None).unwrap();
        mean_u += estimate_sum(f, &RgPlusUStar::new(1.0, scale), &sampler, &samples, None).unwrap();
    }
    mean_l /= trials as f64;
    mean_u /= trials as f64;
    assert!(
        (mean_l - truth).abs() < 0.08 * truth,
        "L*: {mean_l} vs {truth}"
    );
    assert!(
        (mean_u - truth).abs() < 0.08 * truth,
        "U*: {mean_u} vs {truth}"
    );
}

/// The win/loss pattern of Section 7: measured NRMSE of U* beats L* on
/// flow-like data; L* beats U* on stable-like data.
#[test]
fn customization_pattern_on_generated_families() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut fc = PairConfig::flow();
    fc.keys = 400;
    let mut sc = PairConfig::stable();
    sc.keys = 400;
    let flow = flow_like(&fc, &mut rng);
    let stable = stable_like(&sc, &mut rng);
    assert!(
        weighted_jaccard(flow.instance(0), flow.instance(1))
            < weighted_jaccard(stable.instance(0), stable.instance(1))
    );

    let f = RangePowPlus::new(1.0);
    let run = |data: &Dataset| -> (f64, f64) {
        let truth = exact_sum(&f, data, None);
        let scale = scale_for_expected_size(data.instance(0), 80.0);
        let (mut se_l, mut se_u) = (0.0, 0.0);
        let trials = 150;
        for salt in 0..trials {
            let sampler = CoordPps::uniform_scale(2, scale, SeedHasher::new(1000 + salt));
            let samples = sampler.sample_all(data);
            let el =
                estimate_sum(f, &RgPlusLStar::new(1, scale), &sampler, &samples, None).unwrap();
            let eu =
                estimate_sum(f, &RgPlusUStar::new(1.0, scale), &sampler, &samples, None).unwrap();
            se_l += (el - truth) * (el - truth);
            se_u += (eu - truth) * (eu - truth);
        }
        (
            (se_l / trials as f64).sqrt() / truth,
            (se_u / trials as f64).sqrt() / truth,
        )
    };
    let (l_flow, u_flow) = run(&flow);
    let (l_stable, u_stable) = run(&stable);
    assert!(
        u_flow < l_flow,
        "flow-like: U* {u_flow} should beat L* {l_flow}"
    );
    assert!(
        l_stable < u_stable,
        "stable-like: L* {l_stable} should beat U* {u_stable}"
    );
}

/// Bottom-k with conditioned thresholds (footnote 1): per-item L* estimates
/// under priority ranks sum to an unbiased estimate.
#[test]
fn bottomk_conditioned_estimation_unbiased() {
    let n = 120u64;
    let a = Instance::from_pairs((0..n).map(|k| (k, 0.2 + 0.8 * ((k * 3 % 11) as f64 / 11.0))));
    let b = Instance::from_pairs((0..n).map(|k| (k, 0.2 + 0.8 * ((k * 5 % 11) as f64 / 11.0))));
    let f = RangePowPlus::new(1.0);
    let data = Dataset::new(vec![a.clone(), b.clone()]);
    let truth = exact_sum(&f, &data, None);

    let lstar = LStar::new();
    let trials = 250;
    let mut mean = 0.0;
    for salt in 0..trials {
        let sampler = BottomK::new(30, RankMethod::Priority, SeedHasher::new(salt));
        let samples = vec![sampler.sample_instance(&a), sampler.sample_instance(&b)];
        let mut total = 0.0;
        let keys: std::collections::BTreeSet<u64> = samples
            .iter()
            .flat_map(|s| s.iter().map(|(k, _)| k))
            .collect();
        for key in keys {
            let (scheme, outcome) = sampler.priority_item_problem(&samples, key).unwrap();
            let mep = Mep::new(f, scheme).unwrap();
            total += lstar.estimate(&mep, &outcome);
        }
        mean += total;
    }
    mean /= trials as f64;
    assert!(
        (mean - truth).abs() < 0.1 * truth,
        "bottom-k mean {mean} vs truth {truth}"
    );
}

/// The sketch pipeline recovers closeness-similarity sums: unbiased on
/// average and exact when sketches are complete.
#[test]
fn sketch_similarity_pipeline() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let g = monotone_sampling::datagen::graphs::preferential_attachment(80, 2, 0.5, 1.5, &mut rng);
    let alpha = |d: f64| if d.is_finite() { (-d).exp() } else { 0.0 };
    // Complete sketches: exact recovery.
    let full = build_all_ads(&g, 80, &SeedHasher::new(3));
    let est = ClosenessEstimator::new(&full, 80, alpha);
    let (num, den) = est.estimate_sums(2, 3).unwrap();
    let (tn, td) = exact_sums(&g, 2, 3, &alpha);
    assert!((num - tn).abs() < 1e-6 && (den - td).abs() < 1e-6);

    // Partial sketches: unbiased on average.
    let trials = 80;
    let (mut sn, mut sd) = (0.0, 0.0);
    for salt in 0..trials {
        let sketches = build_all_ads(&g, 6, &SeedHasher::new(100 + salt));
        let est = ClosenessEstimator::new(&sketches, 6, alpha);
        let (n1, d1) = est.estimate_sums(2, 3).unwrap();
        sn += n1;
        sd += d1;
    }
    let (mn, md) = (sn / trials as f64, sd / trials as f64);
    assert!((mn - tn).abs() < 0.15 * tn.max(0.05), "num {mn} vs {tn}");
    assert!((md - td).abs() < 0.15 * td.max(0.05), "den {md} vs {td}");
}

/// Three-instance (r = 3) estimation through the generic L* path: the
/// symmetric range RG1 over a drifting panel, estimated from coordinated
/// samples, is unbiased.
#[test]
fn three_instance_generic_pipeline() {
    use monotone_sampling::core::func::RangePow;
    use monotone_sampling::core::quad::QuadConfig;
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let data = monotone_sampling::datagen::pairs::drifting_panel(80, 3, 1.5, 0.4, &mut rng);
    let f = RangePow::new(1.0, 3);
    let truth = exact_sum(&f, &data, None);
    assert!(truth > 0.0);
    let est = LStar::with_quad(QuadConfig::fast());
    let trials = 120;
    let mut mean = 0.0;
    for salt in 0..trials {
        let sampler = CoordPps::uniform_scale(3, 1.0, SeedHasher::new(salt));
        let samples = sampler.sample_all(&data);
        mean += estimate_sum(f, &est, &sampler, &samples, None).unwrap();
    }
    mean /= trials as f64;
    assert!(
        (mean - truth).abs() < 0.1 * truth,
        "r=3 mean {mean} vs truth {truth}"
    );
}

/// Coordination beats independent sampling at equal marginal design
/// (the paper's Section 1 motivation, cross-crate).
#[test]
fn coordination_more_accurate_than_independent() {
    use monotone_sampling::coord::independent::IndependentPps;
    let a = Instance::from_pairs((0..800u64).map(|k| (k, 0.1 + 0.9 * ((k % 83) as f64 / 83.0))));
    // Second instance shrinks by 10%: every item has a positive increase
    // a_k − b_k, so the truth is positive and product-HT stays unbiased.
    let b = Instance::from_pairs(a.iter().map(|(k, w)| (k, w * 0.9)));
    let data = Dataset::new(vec![a, b]);
    let f = RangePowPlus::new(1.0);
    let truth = exact_sum(&f, &data, None);
    let (mut se_c, mut se_i) = (0.0, 0.0);
    let trials = 100;
    for salt in 0..trials {
        let cs = CoordPps::uniform_scale(2, 2.0, SeedHasher::new(salt));
        let samples = cs.sample_all(&data);
        let ec = estimate_sum(f, &RgPlusLStar::new(1, 2.0), &cs, &samples, None).unwrap();
        se_c += (ec - truth) * (ec - truth);
        let is = IndependentPps::uniform_scale(2, 2.0, SeedHasher::new(salt));
        let ei = is.ht_sum_estimate(&f, &is.sample_all(&data), None);
        se_i += (ei - truth) * (ei - truth);
    }
    assert!(
        se_c < se_i,
        "coordinated MSE {se_c} should beat independent {se_i}"
    );
}

/// Example 1 evaluated through the public API: the dataset, the item
/// functions, and the sum queries all compose.
#[test]
fn example1_queries_through_api() {
    let data = Dataset::example1();
    let pair = Dataset::new(vec![data.instance(0).clone(), data.instance(1).clone()]);
    let f = RangePowPlus::new(2.0);
    // Item-level check: RG2+ on item d = (0.70, 0.80): increase-only is 0.
    assert_eq!(f.eval(&pair.tuple(3)), 0.0);
    // Sum over all items is positive.
    assert!(exact_sum(&f, &pair, None) > 0.0);
}
