//! Adversarial-input property tests: every estimator must return finite,
//! nonnegative values across the full representable weight range
//! (`1e-300..1e300`), hashed seeds including the exact extremes `2⁻⁵³` and
//! `1.0` (injected via `SeedHasher::key_for_raw`), and all three bottom-k
//! rank methods. These inputs previously drove the naive `f̄(ρ)/ρ` head
//! terms to `∞ − ∞ = NaN` and exponential ranks to `+∞`.

use monotone_sampling::coord::bottomk::{BottomK, RankMethod};
use monotone_sampling::coord::instance::{merged_weights, Instance};
use monotone_sampling::coord::seed::SeedHasher;
use monotone_sampling::core::estimate::{
    DyadicJ, HorvitzThompson, LStar, MonotoneEstimator, RgPlusLStar, RgPlusUStar, UStar,
};
use monotone_sampling::core::func::RangePowPlus;
use monotone_sampling::core::problem::Mep;
use monotone_sampling::core::quad::QuadConfig;
use monotone_sampling::core::scheme::TupleScheme;
use monotone_sampling::engine::{Engine, EngineQuery, EstimatorKind, PairJob};
use proptest::prelude::*;

/// `(key, a-exponent, b-exponent)`: weights `10^e` spanning `1e-300..1e300`;
/// exponent −301 stands for "absent from this instance".
fn adversarial_pairs() -> impl Strategy<Value = Vec<(u64, i32, i32)>> {
    proptest::collection::vec((0u64..1000, -301i32..=300, -301i32..=300), 1..20)
}

fn build_pair(pairs: &[(u64, i32, i32)], seeder: &SeedHasher) -> (Instance, Instance) {
    let w = |e: i32| if e <= -301 { 0.0 } else { 10f64.powi(e) };
    let mut a = Instance::new();
    let mut b = Instance::new();
    for &(k, ea, eb) in pairs {
        a.set(k, w(ea));
        b.set(k, w(eb));
    }
    // Exact seed extremes: a key hashing to seed 1.0 (exponential rank +∞)
    // and one hashing to the smallest seed 2⁻⁵³, with extreme weights.
    let top = seeder.key_for_raw(u64::MAX);
    a.set(top, 1e300);
    b.set(top, 1e-300);
    let tiny = seeder.key_for_raw(0);
    a.set(tiny, 1e300);
    (a, b)
}

fn check(label: &str, key: u64, e: f64) -> Result<(), TestCaseError> {
    prop_assert!(
        e.is_finite() && e >= 0.0,
        "{label} returned {e} at key {key}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24).with_rng_seed(0x2014_0615_0006))]

    /// Coordinated PPS outcomes: L* (closed + generic), U* (closed +
    /// generic), HT and J all stay finite and nonnegative on RG1+ over the
    /// full weight range.
    #[test]
    fn pps_estimators_finite_nonnegative(pairs in adversarial_pairs(), salt in any::<u64>()) {
        let seeder = SeedHasher::new(salt);
        let (a, b) = build_pair(&pairs, &seeder);
        let mep = Mep::new(RangePowPlus::new(1.0), TupleScheme::pps(&[1.0, 1.0]).unwrap()).unwrap();
        let lstar_closed = RgPlusLStar::new(1, 1.0);
        let lstar_generic = LStar::with_quad(QuadConfig::fast());
        let ustar_closed = RgPlusUStar::new(1.0, 1.0);
        let ustar_generic = UStar::with_steps(16);
        let ht = HorvitzThompson::new();
        let j = DyadicJ::new();
        for (key, wa, wb) in merged_weights(&a, &b) {
            let u = seeder.seed(key);
            let out = mep.scheme().sample(&[wa, wb], u).unwrap();
            let closed = lstar_closed.estimate(&mep, &out);
            check("L* closed", key, closed)?;
            let generic = lstar_generic.estimate(&mep, &out);
            check("L* generic", key, generic)?;
            // The two L* paths are the same estimator.
            prop_assert!(
                (closed - generic).abs() <= 1e-6 * closed.max(1.0),
                "L* closed {closed} vs generic {generic} at key {key}"
            );
            check("U* closed", key, ustar_closed.estimate(&mep, &out))?;
            check("U* generic", key, ustar_generic.estimate(&mep, &out))?;
            check("HT", key, ht.estimate(&mep, &out))?;
            check("J", key, j.estimate(&mep, &out))?;
        }
    }

    /// Bottom-k conditioned problems under every rank method: construction
    /// never panics (infinite ranks, subnormal thresholds) and the generic
    /// estimators stay finite and nonnegative.
    #[test]
    fn bottomk_estimators_finite_nonnegative(
        pairs in adversarial_pairs(),
        salt in any::<u64>(),
        k in 1usize..8,
    ) {
        let seeder = SeedHasher::new(salt);
        let (a, b) = build_pair(&pairs, &seeder);
        let f = RangePowPlus::new(1.0);
        let lstar = LStar::with_quad(QuadConfig::fast());
        let j = DyadicJ::new();
        for method in [RankMethod::Priority, RankMethod::Exponential, RankMethod::Uniform] {
            let sampler = BottomK::new(k, method, seeder);
            let samples = vec![sampler.sample_instance(&a), sampler.sample_instance(&b)];
            for (key, _, _) in merged_weights(&a, &b) {
                match method {
                    RankMethod::Priority => {
                        let (scheme, out) = sampler.priority_item_problem(&samples, key).unwrap();
                        let mep = Mep::new(f, scheme).unwrap();
                        check("bottom-k L*", key, lstar.estimate(&mep, &out))?;
                        check("bottom-k J", key, j.estimate(&mep, &out))?;
                    }
                    RankMethod::Exponential => {
                        let (scheme, out) =
                            sampler.exponential_item_problem(&samples, key).unwrap();
                        let mep = Mep::new(f, scheme).unwrap();
                        check("bottom-k L*", key, lstar.estimate(&mep, &out))?;
                        check("bottom-k J", key, j.estimate(&mep, &out))?;
                    }
                    RankMethod::Uniform => {
                        // Reservoir sampling has no per-item weight scheme;
                        // the membership rule itself must hold (the rank
                        // ignores the weight, so absent items rank too).
                        let s = &samples[0];
                        let rank = method.rank(seeder.seed(key), a.weight(key)).unwrap();
                        let tau = s.conditioned_rank_threshold(key);
                        prop_assert_eq!(
                            s.contains(key),
                            a.weight(key) > 0.0 && rank < tau
                        );
                    }
                }
            }
        }
    }

    /// The batch engine end to end: per-pair estimates and summaries stay
    /// finite and nonnegative on adversarial workloads.
    #[test]
    fn engine_batch_finite_nonnegative(pairs in adversarial_pairs(), salt in any::<u64>()) {
        let seeder = SeedHasher::new(salt);
        let (a, b) = build_pair(&pairs, &seeder);
        let jobs: Vec<PairJob> = (0..4).map(|i| PairJob::new(&a, &b, salt ^ i)).collect();
        let query = EngineQuery::rg_plus(1.0, 1.0).with_estimators(&[
            EstimatorKind::LStar,
            EstimatorKind::UStar,
            EstimatorKind::HorvitzThompson,
            EstimatorKind::DyadicJ,
        ]);
        let batch = Engine::with_threads(2).run(&jobs, &query).unwrap();
        for (i, pair) in batch.pairs.iter().enumerate() {
            prop_assert!(pair.truth.is_finite() && pair.truth >= 0.0);
            for (k, &e) in pair.estimates.iter().enumerate() {
                prop_assert!(
                    e.is_finite() && e >= 0.0,
                    "pair {i} estimator {k} returned {e}"
                );
            }
        }
        for s in &batch.summaries {
            prop_assert!(s.mean_estimate.is_finite() && s.mean_estimate >= 0.0);
            prop_assert!(s.nrmse.is_finite());
        }
    }
}
