//! The paper's core claims, asserted as code (Cohen, "Estimation for
//! Monotone Sampling", PODC 2014; sharpened ratios from arXiv:1406.6490).
//!
//! * L\* is nonnegative, unbiased, and dominates Horvitz-Thompson on
//!   `RGp+` instances (Section 4 / Theorem 4.2);
//! * U\* is unbiased and respects the optimal-range upper bounds given its
//!   committed mass (Section 6: U\* realizes `λ_U`, so no in-range
//!   estimator exceeds it);
//! * L\* is 4-competitive on sampled MEPs (Theorem 4.1), Monte-Carlo over
//!   a fixed-seed family of instances;
//! * on discrete domains the instance-optimal search beats L\* and lands
//!   under the follow-up paper's universal bound of 3.375 (arXiv:1406.6490).
//!
//! All randomness flows through explicitly seeded `StdRng`s so failures
//! reproduce byte-for-byte.

use monotone_sampling::core::discrete::DiscreteMep;
use monotone_sampling::core::estimate::{
    HorvitzThompson, LStar, MonotoneEstimator, RgPlusUStar, VOptimal,
};
use monotone_sampling::core::func::{ItemFn, RangePowPlus};
use monotone_sampling::core::optimal_range::{committed_mass, in_range, lambda_l, lambda_u};
use monotone_sampling::core::optimal_ratio::OptimalRatioSolver;
use monotone_sampling::core::problem::Mep;
use monotone_sampling::core::quad::QuadConfig;
use monotone_sampling::core::scheme::TupleScheme;
use monotone_sampling::core::variance::VarianceCalc;
use rand::{RngExt, SeedableRng, StdRng};

/// Fixed-seed family of `RGp+` data vectors covering similar, dissimilar,
/// and one-sided instances.
fn sampled_vectors(seed: u64, n: usize) -> Vec<[f64; 2]> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vs = Vec::with_capacity(n + 3);
    // Deterministic corner cases first.
    vs.push([0.8, 0.0]);
    vs.push([0.5, 0.5]);
    vs.push([0.05, 0.9]);
    for _ in 0..n {
        let v1: f64 = 0.05 + 0.95 * rng.random::<f64>();
        let v2: f64 = rng.random::<f64>();
        vs.push([v1, v2]);
    }
    vs
}

#[test]
fn lstar_is_nonnegative_and_unbiased_on_rgplus() {
    let mep = Mep::new(
        RangePowPlus::new(1.0),
        TupleScheme::pps(&[1.0, 1.0]).unwrap(),
    )
    .unwrap();
    let est = LStar::new();
    let calc = VarianceCalc::new(1e-8, 1200);
    for v in sampled_vectors(0xC0FFEE, 12) {
        // Nonnegativity at every seed on a grid.
        for k in 1..=60 {
            let u = k as f64 / 60.0;
            let out = mep.scheme().sample(&v, u).unwrap();
            assert!(
                est.estimate(&mep, &out) >= 0.0,
                "L* negative at v={v:?} u={u}"
            );
        }
        // Unbiasedness: the seed-integral of the estimate equals f(v).
        let stats = calc.lstar_stats(&mep, &v).unwrap();
        let f = mep.f().eval(&v);
        assert!(
            (stats.mean - f).abs() <= 2e-3 * f.max(0.05),
            "L* biased at v={v:?}: mean {} vs f {}",
            stats.mean,
            f
        );
    }
}

#[test]
fn lstar_dominates_horvitz_thompson_on_rgplus() {
    let mep = Mep::new(
        RangePowPlus::new(1.0),
        TupleScheme::pps(&[1.0, 1.0]).unwrap(),
    )
    .unwrap();
    let calc = VarianceCalc::new(1e-8, 1200);
    let ht = HorvitzThompson::new();
    let mut strictly_better = 0usize;
    for v in sampled_vectors(0xD0_5E_ED, 12) {
        let l = calc.lstar_stats(&mep, &v).unwrap().esq;
        let stats_ht = calc.stats(&mep, &ht, &v).unwrap();
        let f = mep.f().eval(&v);
        if (stats_ht.mean - f).abs() > 0.05 * f.max(0.05) {
            // HT is biased here (an entry with zero weight is never
            // revealed, e.g. the [0.8, 0.0] corner): the dominance claim
            // compares unbiased estimators, so skip the instance.
            continue;
        }
        let h = stats_ht.esq;
        // Dominance: E[L*²] <= E[HT²] on every instance...
        assert!(
            l <= h + 1e-6 * h.max(1e-9),
            "L* not dominating HT at v={v:?}: {l} vs {h}"
        );
        if l < h * 0.99 {
            strictly_better += 1;
        }
    }
    // ...and strictly better somewhere (it is admissible, HT is not).
    assert!(strictly_better > 0, "expected strict improvement somewhere");
}

#[test]
fn ustar_is_unbiased_and_within_optimal_range_bounds() {
    let scale = 1.0;
    let mep = Mep::new(
        RangePowPlus::new(1.0),
        TupleScheme::pps(&[scale, scale]).unwrap(),
    )
    .unwrap();
    let est = RgPlusUStar::new(1.0, scale);
    let quad = QuadConfig::fast();
    for v in sampled_vectors(0xBEEF, 8) {
        // Unbiasedness of the closed form: integrate the estimate over the
        // seed with breakpoints at the reveal thresholds.
        let mean = monotone_sampling::core::quad::integrate_with_breakpoints(
            |u| est.estimate(&mep, &mep.scheme().sample(&v, u).unwrap()),
            1e-9,
            1.0,
            &[v[0], v[1], 1.0],
            &QuadConfig::default(),
        );
        let f = mep.f().eval(&v);
        assert!(
            (mean - f).abs() <= 2e-3 * f.max(0.05),
            "U* biased at v={v:?}: mean {mean} vs f {f}"
        );
        // The ≤-bounds: given its own committed mass M, every U* estimate
        // lies in [λ_L(S, M), λ_U(S, M)] — nothing in-range exceeds λ_U.
        for k in 1..=20 {
            let u = k as f64 / 20.0;
            let out = mep.scheme().sample(&v, u).unwrap();
            let m = committed_mass(&mep, &est, &out, &quad).unwrap();
            let e = est.estimate(&mep, &out);
            let lo = lambda_l(&mep, &out, m);
            let hi = lambda_u(&mep, &out, m, 400);
            let tol = 5e-3 * hi.abs().max(0.05);
            assert!(
                e >= lo - tol && e <= hi + tol,
                "U* out of range at v={v:?} u={u}: {e} vs [{lo}, {hi}]"
            );
            assert!(in_range(&mep, &out, m, e, 1e-2), "in_range rejects U*");
        }
    }
}

#[test]
fn lstar_is_four_competitive_on_sampled_meps() {
    // Monte-Carlo over MEPs: three RGp+ exponents × fixed-seed data family.
    let calc = VarianceCalc::new(1e-8, 1200);
    let mut worst: f64 = 0.0;
    for (i, &p) in [0.75, 1.0, 2.0].iter().enumerate() {
        let mep = Mep::new(RangePowPlus::new(p), TupleScheme::pps(&[1.0, 1.0]).unwrap()).unwrap();
        for v in sampled_vectors(0xFEED + i as u64, 10) {
            if let Some(ratio) = calc.lstar_competitive_ratio(&mep, &v).unwrap() {
                assert!(
                    ratio <= 4.0 + 0.05,
                    "L* ratio {ratio} exceeds 4 at p={p} v={v:?}"
                );
                worst = worst.max(ratio);
            }
        }
    }
    assert!(worst > 1.0, "ratio sweep degenerate (worst {worst})");
}

#[test]
fn vopt_oracle_lower_bounds_both_estimators() {
    let mep = Mep::new(
        RangePowPlus::new(1.0),
        TupleScheme::pps(&[1.0, 1.0]).unwrap(),
    )
    .unwrap();
    let calc = VarianceCalc::new(1e-8, 900);
    let vopt = VOptimal::with_resolution(1e-8, 1500);
    for v in sampled_vectors(0xACE, 8) {
        let opt = vopt.esq(&mep, &v).unwrap();
        let l = calc.lstar_stats(&mep, &v).unwrap().esq;
        let u = calc
            .stats(&mep, &RgPlusUStar::new(1.0, 1.0), &v)
            .unwrap()
            .esq;
        let slack = 1e-3 * opt.max(1e-6);
        assert!(l >= opt - slack, "L* {l} beats the oracle {opt} at {v:?}");
        assert!(u >= opt - slack, "U* {u} beats the oracle {opt} at {v:?}");
    }
}

#[test]
fn discrete_optimal_search_beats_lstar_and_followup_bound() {
    // Instance-optimal ratios on a discrete RG1+ domain: the search result
    // must improve on the L*-order initializer and stay under the universal
    // 3.375 bound of the follow-up paper (arXiv:1406.6490) — which any
    // instance-optimal ratio is below, since the universal bound is a sup.
    let vectors: Vec<Vec<f64>> = (0..4)
        .flat_map(|a| (0..4).map(move |b| vec![a as f64, b as f64]))
        .collect();
    let probs = vec![(0.0, 0.0), (1.0, 0.25), (2.0, 0.5), (3.0, 0.75)];
    let mep =
        DiscreteMep::new(RangePowPlus::new(1.0), vectors, vec![probs.clone(), probs]).unwrap();
    let solver = OptimalRatioSolver {
        iters: 1500,
        step: 0.15,
        sweeps: 6,
    };
    let found = solver.solve(&mep).unwrap();
    assert!(found.residual <= 1e-6, "infeasible result: {found:?}");
    assert!(
        found.ratio <= found.lstar_ratio + 1e-9,
        "search worse than initializer: {found:?}"
    );
    assert!(
        found.lstar_ratio <= 4.0 + 1e-6,
        "L* order above 4: {found:?}"
    );
    assert!(
        found.ratio <= 3.375,
        "instance-optimal ratio above the follow-up universal bound: {found:?}"
    );
}
