//! Doctest coverage gate: every public module of `monotone-core`,
//! `monotone-coord`, and `monotone-engine` must carry at least one
//! *runnable* doctest (a code fence not marked `ignore`, `no_run`, or
//! `text`), so `cargo test -q` exercises every module's documented entry
//! point.

use std::path::{Path, PathBuf};

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| panic!("read {dir:?}: {e}"));
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// True if the source contains a doc code fence that rustdoc will run:
/// an opener that is bare ```` ``` ```` or tagged `rust` (optionally with
/// extra modifiers like `should_panic`, but not `ignore`/`no_run`/`text`).
fn has_runnable_doctest(source: &str) -> bool {
    // Track open/close state so only *opening* fences are classified —
    // otherwise every block's bare ``` closer would count as runnable.
    let mut inside_block = false;
    for line in source.lines() {
        let trimmed = line.trim_start();
        let Some(rest) = trimmed
            .strip_prefix("//!")
            .or_else(|| trimmed.strip_prefix("///"))
        else {
            continue;
        };
        let Some(tag) = rest.trim_start().strip_prefix("```") else {
            continue;
        };
        if inside_block {
            inside_block = false;
            continue;
        }
        inside_block = true;
        // rustdoc only executes fences whose every tag is Rust-flavored:
        // untagged, `rust`, or a run-preserving modifier. Anything else
        // (```sh, ```json, ```ignore, ```no_run, ...) produces no doctest.
        let runnable = tag.split([',', ' ']).filter(|t| !t.is_empty()).all(|t| {
            matches!(t.trim(), "rust" | "should_panic") || t.trim().starts_with("edition")
        });
        if runnable {
            return true;
        }
    }
    false
}

#[test]
fn every_public_module_in_core_coord_and_engine_has_a_doctest() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut missing = Vec::new();
    for crate_dir in ["crates/core/src", "crates/coord/src", "crates/engine/src"] {
        let mut files = Vec::new();
        rust_files(&root.join(crate_dir), &mut files);
        assert!(!files.is_empty(), "no sources under {crate_dir}");
        for file in files {
            let source = std::fs::read_to_string(&file).expect("read source");
            if !has_runnable_doctest(&source) {
                missing.push(file.strip_prefix(root).unwrap_or(&file).to_path_buf());
            }
        }
    }
    assert!(
        missing.is_empty(),
        "public modules without a runnable doctest: {missing:?}"
    );
}

#[test]
fn umbrella_quickstart_is_a_runnable_doctest() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(root.join("src/lib.rs")).expect("read src/lib.rs");
    assert!(
        has_runnable_doctest(&source),
        "src/lib.rs quickstart must stay a runnable doctest"
    );
}
