//! Integration tests for the paper's headline claims, spanning crates.

use monotone_sampling::core::discrete::{DiscreteMep, OrderOptimal};
use monotone_sampling::core::estimate::{
    DyadicJ, HorvitzThompson, LStar, MonotoneEstimator, RgPlusLStar, RgPlusUStar,
};
use monotone_sampling::core::func::{PowerGapFamily, RangePowPlus};
use monotone_sampling::core::problem::Mep;
use monotone_sampling::core::scheme::TupleScheme;
use monotone_sampling::core::variance::VarianceCalc;

/// Theorem 4.1: the L* competitive ratio approaches (and never exceeds) 4
/// on the tight family; closed forms and numerics agree away from the
/// boundary.
#[test]
fn lstar_ratio_approaches_four_on_tight_family() {
    let calc = VarianceCalc::new(1e-12, 4000);
    for &p in &[0.0, 0.15, 0.3, 0.4] {
        let fam = PowerGapFamily::new(p);
        let mep = Mep::new(fam, TupleScheme::pps(&[1.0]).unwrap()).unwrap();
        let numeric = calc
            .lstar_competitive_ratio(&mep, &[0.0])
            .unwrap()
            .expect("optimum positive");
        let closed = fam.ratio_at_zero();
        assert!(closed < 4.0);
        assert!(
            (numeric - closed).abs() < 0.08 * closed,
            "p={p}: numeric {numeric} vs closed {closed}"
        );
    }
    // The closed form crosses 3.9 only very near p = 0.5.
    assert!(PowerGapFamily::new(0.49).ratio_at_zero() > 3.9);
}

/// Section 1 / Section 7: the L* ratios for the exponentiated range are
/// 2 (p = 1) and 2.5 (p = 2), attained at v2 = 0.
#[test]
fn lstar_ratios_for_exponentiated_range() {
    let calc = VarianceCalc::new(1e-10, 3000);
    let mep1 = Mep::new(
        RangePowPlus::new(1.0),
        TupleScheme::pps(&[1.0, 1.0]).unwrap(),
    )
    .unwrap();
    let r1 = calc
        .lstar_competitive_ratio(&mep1, &[0.8, 0.0])
        .unwrap()
        .unwrap();
    assert!((r1 - 2.0).abs() < 0.03, "RG1+ ratio {r1}");
    let mep2 = Mep::new(
        RangePowPlus::new(2.0),
        TupleScheme::pps(&[1.0, 1.0]).unwrap(),
    )
    .unwrap();
    let r2 = calc
        .lstar_competitive_ratio(&mep2, &[0.8, 0.0])
        .unwrap()
        .unwrap();
    assert!((r2 - 2.5).abs() < 0.04, "RG2+ ratio {r2}");
    // Interior vectors have smaller ratios (v2 = 0 is the supremum).
    let r_interior = calc
        .lstar_competitive_ratio(&mep1, &[0.8, 0.4])
        .unwrap()
        .unwrap();
    assert!(
        r_interior < r1 + 1e-9,
        "interior ratio {r_interior} vs sup {r1}"
    );
}

/// Theorem 4.2: L* dominates HT (at most its variance on every data vector
/// where HT is unbiased).
#[test]
fn lstar_dominates_horvitz_thompson() {
    let calc = VarianceCalc::new(1e-9, 1500);
    let ht = HorvitzThompson::new();
    for &p in &[1.0, 2.0] {
        let mep = Mep::new(RangePowPlus::new(p), TupleScheme::pps(&[1.0, 1.0]).unwrap()).unwrap();
        for &v in &[[0.9, 0.2], [0.9, 0.6], [0.5, 0.3], [0.7, 0.65]] {
            assert!(ht.is_applicable(&mep, &v).unwrap());
            let l = calc.lstar_stats(&mep, &v).unwrap().variance;
            let h = calc.stats(&mep, &ht, &v).unwrap().variance;
            assert!(l <= h + 1e-6, "p={p} v={v:?}: L* {l} vs HT {h}");
        }
    }
}

/// Monotonicity (Theorem 4.2): fixing data, the L* estimate is
/// non-increasing in the seed; the J baseline is not monotone.
#[test]
fn lstar_monotone_j_not() {
    let mep = Mep::new(
        RangePowPlus::new(1.0),
        TupleScheme::pps(&[1.0, 1.0]).unwrap(),
    )
    .unwrap();
    let lstar = RgPlusLStar::new(1, 1.0);
    let j = DyadicJ::new();
    let v = [0.7, 0.3];
    let mut prev_l = f64::INFINITY;
    let mut j_increases = 0;
    let mut prev_j = f64::INFINITY;
    for k in 1..=200 {
        let u = k as f64 / 200.0;
        let out = mep.scheme().sample(&v, u).unwrap();
        let l = lstar.estimate(&mep, &out);
        assert!(l <= prev_l + 1e-9, "L* increased at u={u}");
        prev_l = l;
        let jv = j.estimate(&mep, &out);
        if jv > prev_j + 1e-12 {
            j_increases += 1;
        }
        prev_j = jv;
    }
    assert!(
        j_increases > 0,
        "expected the J estimate to be non-monotone"
    );
}

/// Theorem 4.3 + Lemma 6.1 on a discrete domain: the order-optimal
/// construction with f-ascending order is L*, and the f-descending order
/// beats it exactly on the largest-f data.
#[test]
fn discrete_order_optimality_matches_continuous_intuition() {
    let mut vectors = Vec::new();
    for a in 0..5 {
        for b in 0..5 {
            vectors.push(vec![a as f64, b as f64]);
        }
    }
    let probs: Vec<(f64, f64)> = (0..5).map(|w| (w as f64, w as f64 * 0.2)).collect();
    let mep =
        DiscreteMep::new(RangePowPlus::new(1.0), vectors, vec![probs.clone(), probs]).unwrap();
    let asc = OrderOptimal::f_ascending(&mep);
    let desc = OrderOptimal::f_descending(&mep);
    // Exact unbiasedness everywhere for both.
    for v in mep.vectors().to_vec() {
        let f = (v[0] - v[1]).max(0.0);
        assert!(
            (asc.expected(&v).unwrap() - f).abs() < 1e-10,
            "asc at {v:?}"
        );
        assert!(
            (desc.expected(&v).unwrap() - f).abs() < 1e-10,
            "desc at {v:?}"
        );
        // And agreement with the exact interval-sum L* for the asc order.
        for k in 0..mep.interval_count() {
            let out = mep.outcome_at_interval(&v, k);
            assert!((asc.estimate(&out) - mep.lstar_estimate(&out)).abs() < 1e-10);
        }
    }
    // Customization: desc order no worse at the max-difference vector.
    let vmax = [4.0, 0.0];
    assert!(desc.variance(&vmax).unwrap() <= asc.variance(&vmax).unwrap() + 1e-9);
    // And asc no worse at a minimal positive difference.
    let vmin = [4.0, 3.0];
    assert!(asc.variance(&vmin).unwrap() <= desc.variance(&vmin).unwrap() + 1e-9);
}

/// The customization story of Section 7: U* wins on dissimilar data, L* on
/// similar data, and L*'s worst case is bounded while U*'s is not small.
#[test]
fn customization_tradeoff() {
    let mep = Mep::new(
        RangePowPlus::new(1.0),
        TupleScheme::pps(&[1.0, 1.0]).unwrap(),
    )
    .unwrap();
    let calc = VarianceCalc::new(1e-9, 1500);
    let ustar = RgPlusUStar::new(1.0, 1.0);
    // Dissimilar: v2 = 0.
    let l_dis = calc.lstar_stats(&mep, &[0.8, 0.0]).unwrap().variance;
    let u_dis = calc.stats(&mep, &ustar, &[0.8, 0.0]).unwrap().variance;
    assert!(u_dis < l_dis, "dissimilar: U* {u_dis} vs L* {l_dis}");
    // Similar: v2 close to v1.
    let l_sim = calc.lstar_stats(&mep, &[0.8, 0.75]).unwrap().variance;
    let u_sim = calc.stats(&mep, &ustar, &[0.8, 0.75]).unwrap().variance;
    assert!(l_sim < u_sim, "similar: L* {l_sim} vs U* {u_sim}");
    // The relative penalty of U* on similar data exceeds L*'s on dissimilar.
    let l_penalty = l_dis / u_dis;
    let u_penalty = u_sim / l_sim;
    assert!(
        u_penalty > l_penalty,
        "U* penalty {u_penalty} vs L* penalty {l_penalty}"
    );
}

/// The generic (quadrature) L* path agrees with the closed forms on random
/// outcomes — the closed forms validate the machinery used for arbitrary f.
#[test]
fn generic_lstar_agrees_with_closed_forms() {
    for &(p, pi) in &[(1u8, 1.0f64), (2u8, 2.0f64)] {
        let mep = Mep::new(
            RangePowPlus::new(pi),
            TupleScheme::pps(&[1.0, 1.0]).unwrap(),
        )
        .unwrap();
        let closed = RgPlusLStar::new(p, 1.0);
        let generic = LStar::new();
        for i in 0..40 {
            let v1 = 0.05 + 0.9 * ((i * 7) % 19) as f64 / 19.0;
            let v2 = v1 * (((i * 3) % 10) as f64 / 10.0);
            let u = 0.02 + 0.96 * ((i * 11) % 23) as f64 / 23.0;
            let out = mep.scheme().sample(&[v1, v2], u).unwrap();
            let a = closed.estimate(&mep, &out);
            let b = generic.estimate(&mep, &out);
            assert!(
                (a - b).abs() < 1e-7 * a.abs().max(1.0),
                "p={pi} v=({v1},{v2}) u={u}: {a} vs {b}"
            );
        }
    }
}
