#!/usr/bin/env bash
# Shared CI regression gate: compare one numeric field of a freshly
# measured BENCH_*.json against the committed baseline copy.
#
# Usage:
#   ci/gate.sh <baseline.json> <measured.json> <field> --ratio R [--lane-field F]
#   ci/gate.sh <baseline.json> <measured.json> <field> --slack D [--lane-field F]
#   ci/gate.sh <baseline.json> <measured.json> <field> --ratio-max R [--lane-field F]
#
#   --ratio R       floor = R * baseline      (perf floors, e.g. 0.8: the
#                   measured value may lose at most 20% to runner noise)
#   --slack D       floor = baseline - D      (accuracy floors, e.g. a
#                   recall gate at baseline - 0.02)
#   --ratio-max R   ceiling = R * baseline    (resource ceilings, e.g. a
#                   peak-memory bound at 1.0: the measured value may not
#                   exceed the baseline — larger is the regression)
#   --lane-field F  skip (exit 0) when the baseline and the measured
#                   record disagree on this string field: the runner
#                   executes different machine code and the ratio would
#                   compare apples to oranges. Schema drift in the lane
#                   field still fails loudly.
#
# A missing field in either record is schema drift and always fails —
# a gate must never be disabled silently.
set -euo pipefail

usage() {
  echo "usage: $0 <baseline.json> <measured.json> <field> (--ratio R | --slack D | --ratio-max R) [--lane-field F]" >&2
  exit 2
}

[ $# -ge 5 ] || usage
baseline=$1
measured=$2
field=$3
mode=$4
margin=$5
shift 5

lane_field=""
while [ $# -gt 0 ]; do
  case $1 in
    --lane-field)
      [ $# -ge 2 ] || usage
      lane_field=$2
      shift 2
      ;;
    *) usage ;;
  esac
done

base=$(jq -r ".$field" "$baseline")
new=$(jq -r ".$field" "$measured")
if [ "$base" = null ] || [ "$new" = null ]; then
  echo "FAIL: $field missing (baseline=$base, measured=$new)"
  exit 1
fi

if [ -n "$lane_field" ]; then
  base_lane=$(jq -r ".$lane_field" "$baseline")
  new_lane=$(jq -r ".$lane_field" "$measured")
  if [ "$base_lane" = null ] || [ "$new_lane" = null ]; then
    echo "FAIL: $lane_field missing (baseline=$base_lane, measured=$new_lane)"
    exit 1
  fi
  if [ "$new_lane" != "$base_lane" ]; then
    echo "SKIP: $lane_field differs (baseline $base_lane, runner $new_lane) — $field not comparable"
    exit 0
  fi
fi

case $mode in
  --ratio) floor=$(awk -v b="$base" -v m="$margin" 'BEGIN { printf "%.6g", m * b }') ;;
  --slack) floor=$(awk -v b="$base" -v m="$margin" 'BEGIN { printf "%.6g", b - m }') ;;
  --ratio-max)
    ceiling=$(awk -v b="$base" -v m="$margin" 'BEGIN { printf "%.6g", m * b }')
    echo "$field: baseline $base, measured $new, ceiling $ceiling ($mode $margin)"
    awk -v n="$new" -v c="$ceiling" 'BEGIN { exit !(n <= c) }' || {
      echo "FAIL: measured $field $new above ceiling $ceiling (baseline $base, $mode $margin)"
      exit 1
    }
    exit 0
    ;;
  *) usage ;;
esac

echo "$field: baseline $base, measured $new, floor $floor ($mode $margin)"
awk -v n="$new" -v f="$floor" 'BEGIN { exit !(n >= f) }' || {
  echo "FAIL: measured $field $new below floor $floor (baseline $base, $mode $margin)"
  exit 1
}
