//! `any::<T>()` — full-range strategies for primitive types.

use core::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.bits() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bits() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values spanning many magnitudes (not raw bit patterns, which
    /// would mostly be NaN/huge and useless for numeric properties).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.range(-64i32..65) as f64;
        mantissa * exp.exp2()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> core::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
