//! The deterministic case runner: configuration, per-case RNG, and
//! regression-seed persistence/replay.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use rand::{Rng, RngExt, SeedableRng, StdRng};

/// Runner configuration. Construct with [`ProptestConfig::with_cases`] and
/// optionally pin the generator with [`ProptestConfig::with_rng_seed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated globally.
    pub max_global_rejects: u32,
    /// Base seed for input generation. Combined with the test's name so
    /// sibling tests draw distinct streams; override via the
    /// `PROPTEST_RNG_SEED` environment variable for ad-hoc exploration.
    pub rng_seed: u64,
}

/// The default base seed (digits of pi): fixed so every run of the suite
/// generates the same inputs unless explicitly overridden.
pub const DEFAULT_RNG_SEED: u64 = 0x243F_6A88_85A3_08D3;

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
            rng_seed: DEFAULT_RNG_SEED,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    /// Pins the base generation seed (deterministic input streams).
    pub fn with_rng_seed(mut self, seed: u64) -> ProptestConfig {
        self.rng_seed = seed;
        self
    }
}

/// The generator handed to strategies. Deterministic per case.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator for one case, addressed by its 64-bit case seed.
    pub fn from_case_seed(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.random()
    }

    /// Uniform draw from a non-empty range.
    pub fn range<R: rand::SampleRange>(&mut self, range: R) -> R::Output {
        self.0.random_range(range)
    }

    /// The next 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` precondition unmet: draw another case.
    Reject(String),
    /// `prop_assert!` failed: the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a — stable name hashing so each test gets its own input stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer — decorrelates sequential case indices.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives the cases of one property test.
pub struct TestRunner {
    config: ProptestConfig,
    full_name: String,
    fn_name: String,
    regressions: PathBuf,
}

impl TestRunner {
    /// Builds a runner for the named test. `manifest_dir` and `source_file`
    /// locate the crate-local `proptest-regressions/` store.
    pub fn new(
        config: ProptestConfig,
        full_name: &str,
        fn_name: &str,
        manifest_dir: &str,
        source_file: &str,
    ) -> TestRunner {
        let stem = Path::new(source_file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unknown".to_string());
        let regressions = Path::new(manifest_dir)
            .join("proptest-regressions")
            .join(format!("{stem}.txt"));
        TestRunner {
            config,
            full_name: full_name.to_string(),
            fn_name: fn_name.to_string(),
            regressions,
        }
    }

    /// Seeds recorded for this test in the regressions file (`cc <name>
    /// <seed>` lines; `#` starts a comment).
    fn regression_seeds(&self) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(&self.regressions) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let line = line.split('#').next().unwrap_or("").trim();
                let mut parts = line.split_whitespace();
                match (parts.next(), parts.next(), parts.next()) {
                    (Some("cc"), Some(name), Some(seed)) if name == self.fn_name => {
                        seed.parse::<u64>().ok()
                    }
                    _ => None,
                }
            })
            .collect()
    }

    fn persist_failure(&self, case_seed: u64, message: &str) {
        if self.regression_seeds().contains(&case_seed) {
            // Deterministic failures re-fail with the same seed on every
            // run; don't accumulate duplicate entries.
            return;
        }
        let Some(dir) = self.regressions.parent() else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let entry = format!(
            "cc {} {} # seeds the failing case: {}\n",
            self.fn_name,
            case_seed,
            message.replace('\n', " ")
        );
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.regressions)
        {
            let _ = f.write_all(entry.as_bytes());
        }
    }

    fn base_seed(&self) -> u64 {
        let seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(self.config.rng_seed);
        seed ^ fnv1a(self.full_name.as_bytes())
    }

    /// Runs regression seeds first, then `config.cases` fresh cases. Panics
    /// (failing the enclosing `#[test]`) on the first violated property,
    /// after persisting the case seed.
    pub fn run(&mut self, case: &mut dyn FnMut(&mut TestRng) -> TestCaseResult) {
        for seed in self.regression_seeds() {
            self.run_one(seed, case, true);
        }
        let base = self.base_seed();
        let mut rejects = 0u32;
        let mut accepted = 0u32;
        let mut draw = 0u64;
        while accepted < self.config.cases {
            let case_seed = mix(base.wrapping_add(draw));
            draw += 1;
            match self.run_one(case_seed, case, false) {
                CaseOutcome::Passed => accepted += 1,
                CaseOutcome::Rejected => {
                    rejects += 1;
                    assert!(
                        rejects <= self.config.max_global_rejects,
                        "{}: too many prop_assume! rejections ({rejects})",
                        self.full_name
                    );
                }
            }
        }
    }

    fn run_one(
        &self,
        case_seed: u64,
        case: &mut dyn FnMut(&mut TestRng) -> TestCaseResult,
        is_regression: bool,
    ) -> CaseOutcome {
        let mut rng = TestRng::from_case_seed(case_seed);
        match case(&mut rng) {
            Ok(()) => CaseOutcome::Passed,
            Err(TestCaseError::Reject(_)) => CaseOutcome::Rejected,
            Err(TestCaseError::Fail(msg)) => {
                if !is_regression {
                    self.persist_failure(case_seed, &msg);
                }
                panic!(
                    "{}: property violated at case seed {case_seed}{}: {msg}",
                    self.full_name,
                    if is_regression {
                        " (regression replay)"
                    } else {
                        ""
                    },
                );
            }
        }
    }
}

enum CaseOutcome {
    Passed,
    Rejected,
}
