//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
