//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Provides the slice of the proptest API this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`, range/tuple/`any`/
//! [`collection::vec`] strategies, [`test_runner::ProptestConfig`], the
//! [`proptest!`] macro, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` assertion macros.
//!
//! Unlike the real crate there is no shrinking; instead every generated
//! case is addressed by an explicit 64-bit seed. Failures print the seed,
//! persist it to `proptest-regressions/<file>.txt`, and committed entries
//! there are replayed first on the next run — so failures reproduce
//! byte-for-byte across machines.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
                stringify!($name),
                env!("CARGO_MANIFEST_DIR"),
                file!(),
            );
            runner.run(&mut |__rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __rng);)*
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with its reproduction seed) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discards the current case (without counting it) when its inputs don't
/// satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}
