//! The [`Strategy`] trait and the built-in strategies: numeric ranges,
//! tuples, and the [`Map`] adapter behind `prop_map`.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let x = self.start + (self.end - self.start) * rng.unit_f64();
        // Rounding in the affine map can land exactly on `end`; keep the
        // half-open contract.
        if x >= self.end {
            self.end.next_down()
        } else {
            x
        }
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 strategy range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
