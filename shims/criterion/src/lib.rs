//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the workspace's benchmark surface — [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! wall-clock measurement loop (brief warm-up, then timed batches) and a
//! median-of-batches ns/iter report on stdout. No statistics engine, plots,
//! or baselines; swap the workspace's `criterion` path dependency for the
//! registry crate when network access is available.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock spent measuring each benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(200);
/// Number of timed batches the measurement is split into.
const BATCHES: usize = 11;

/// How batched setup output is amortized (accepted for API compatibility;
/// the shim runs every batch with per-iteration setup outside the timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs: many iterations per setup batch.
    SmallInput,
    /// Large routine inputs: few iterations per setup batch.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Times one benchmark routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, called back-to-back in timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: find an iteration count per batch that
        // lands near the per-batch time budget.
        let once = time_one(&mut routine);
        let budget = MEASURE_TARGET.as_secs_f64() / BATCHES as f64;
        let per_batch = (budget / once.max(1e-9)).clamp(1.0, 1e7) as u64;
        self.samples_ns.clear();
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let total = start.elapsed().as_secs_f64();
            self.samples_ns.push(total * 1e9 / per_batch as f64);
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is kept
    /// outside the timed region.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let once = {
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed().as_secs_f64().max(1e-9)
        };
        let budget = MEASURE_TARGET.as_secs_f64() / BATCHES as f64;
        let per_batch = (budget / once).clamp(1.0, 1e6) as u64;
        self.samples_ns.clear();
        for _ in 0..BATCHES {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let total = start.elapsed().as_secs_f64();
            self.samples_ns.push(total * 1e9 / per_batch as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples_ns.is_empty() {
            return f64::NAN;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.samples_ns[self.samples_ns.len() / 2]
    }
}

fn time_one<O, F: FnMut() -> O>(routine: &mut F) -> f64 {
    let start = Instant::now();
    black_box(routine());
    start.elapsed().as_secs_f64()
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(id, b.median_ns());
        self
    }

    /// Opens a named group; benchmarks inside report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

fn report(id: &str, ns: f64) {
    if ns >= 1e6 {
        println!("{id:<40} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{id:<40} {:>12.3} µs/iter", ns / 1e3);
    } else {
        println!("{id:<40} {:>12.1} ns/iter", ns);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.median_ns());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
