//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the narrow slice of the `rand` API its sources use: [`SeedableRng`] with
//! `seed_from_u64`, [`rngs::StdRng`] (a xoshiro256++ generator seeded via
//! SplitMix64), the [`Rng`] source trait, and the [`RngExt`] extension trait
//! providing `random::<T>()` and `random_range(..)`.
//!
//! Determinism contract: for a fixed seed, the generated stream is stable
//! across platforms and releases — tests pin exact sequences.

pub mod rngs;

pub use rngs::StdRng;

/// A source of randomness: everything is derived from `next_u64`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values sampleable uniformly from a generator's bit stream (the shim's
/// analogue of sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws a value uniformly from the (non-empty) range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Draws uniformly from `[0, bound)` without modulo bias (Lemire-style
/// rejection on the widening multiply).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let x = self.start + (self.end - self.start) * f64::sample(rng);
        // Rounding in the affine map can land exactly on `end`; keep the
        // half-open contract.
        if x >= self.end {
            self.end.next_down()
        } else {
            x
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform value of type `T` (`f64`/`f32` in `[0, 1)`, integers over
    /// their full range, `bool` fair).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from a non-empty range.
    fn random_range<Range: SampleRange>(&mut self, range: Range) -> Range::Output {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn range_sampling_unbiased() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            counts[rng.random_range(0..6usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            match rng.random_range(0..=3u32) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
