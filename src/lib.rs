//! # monotone-sampling
//!
//! A Rust implementation of **Edith Cohen, "Estimation for Monotone
//! Sampling: Competitiveness and Customization" (PODC 2014,
//! arXiv:1212.0243)** — the L\*, U\* and order-optimal estimators for
//! monotone sampling schemes, together with the substrates the paper's
//! applications rest on: coordinated shared-seed sampling (PPS / bottom-k)
//! of multi-instance datasets and all-distances sketches of graphs.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`core`] ([`monotone_core`]) — monotone estimation problems, the
//!   lower-bound/hull calculus, and the estimators (L\*, U\*,
//!   Horvitz-Thompson, dyadic J, v-optimal oracle, discrete order-optimal);
//! * [`coord`] ([`monotone_coord`]) — coordinated sampling of weighted
//!   instances and the sum-aggregate query pipeline;
//! * [`sketches`] ([`monotone_sketches`]) — graphs, Dijkstra,
//!   all-distances sketches, HIP probabilities, closeness similarity;
//! * [`datagen`] ([`monotone_datagen`]) — synthetic workloads standing in
//!   for the paper's proprietary datasets;
//! * [`engine`] ([`monotone_engine`]) — the batched, thread-parallel
//!   estimation engine driving all estimators over large pair workloads
//!   (the designated hot path);
//! * [`store`] ([`monotone_store`]) — estimation as a service: a resident
//!   store of coordinated bottom-k sketches with live group queries
//!   answered through the engine's sketch-backed item sources.
//!
//! ## Quickstart
//!
//! ```
//! use monotone_sampling::core::estimate::{LStar, MonotoneEstimator};
//! use monotone_sampling::core::func::RangePowPlus;
//! use monotone_sampling::core::problem::Mep;
//! use monotone_sampling::core::scheme::TupleScheme;
//!
//! # fn main() -> Result<(), monotone_sampling::core::Error> {
//! // A monotone estimation problem: estimate max(0, v1 - v2) from a
//! // coordinated PPS sample of the pair (v1, v2).
//! let mep = Mep::new(RangePowPlus::new(1.0), TupleScheme::pps(&[1.0, 1.0]).unwrap())?;
//! let outcome = mep.scheme().sample(&[0.6, 0.2], 0.35)?;
//! let estimate = LStar::new().estimate(&mep, &outcome);
//! assert!(estimate > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `monotone-bench` crate for the experiment suite regenerating every table
//! and figure of the paper.

// README code blocks must stay runnable: compile and run them as
// doctests alongside the crate's own.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

pub use monotone_coord as coord;
pub use monotone_core as core;
pub use monotone_datagen as datagen;
pub use monotone_engine as engine;
pub use monotone_sketches as sketches;
pub use monotone_store as store;
